//===- merge/StructuralHash.cpp - Canonical function-body hashing -------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "merge/StructuralHash.h"
#include "ir/BasicBlock.h"
#include "ir/Function.h"
#include "ir/IRBuilder.h"
#include "ir/Instruction.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "support/FaultInjection.h"
#include "transforms/Cloning.h"
#include <cassert>
#include <cstring>
#include <unordered_map>

namespace salssa {

namespace {

//===----------------------------------------------------------------------===//
// Hash stream
//===----------------------------------------------------------------------===//

uint64_t mix64(uint64_t X) {
  // splitmix64 finalizer.
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Two independent 64-bit accumulators fed the same word stream. The
/// word stream itself is the canonical encoding; the accumulators only
/// have to avalanche it. 128 bits keep the pool-wide collision
/// probability negligible, and structurallyEqual confirms every
/// clustering decision anyway.
class HashStream {
public:
  void add(uint64_t W) {
    Lo = mix64(Lo ^ W);
    Hi = (Hi ^ mix64(W + 0x632be59bd9b4e019ULL)) * 0x100000001b3ULL;
  }

  void addString(std::string_view S) {
    add(S.size());
    uint64_t H = 0xcbf29ce484222325ULL; // FNV-1a over the bytes
    for (char C : S)
      H = (H ^ static_cast<uint8_t>(C)) * 0x100000001b3ULL;
    add(H);
  }

  StructuralHash finish() const { return {Hi, Lo}; }

private:
  uint64_t Hi = 0x6a09e667f3bcc908ULL;
  uint64_t Lo = 0xbb67ae8584caa73bULL;
};

// Tags keep the encoding prefix-free across operand classes: a word can
// never be read as both "argument index" and "instruction id".
enum : uint64_t {
  TagType = 0x11,
  TagBlock = 0x22,
  TagInst = 0x33,
  TagOpArgument = 0x41,
  TagOpInstruction = 0x42,
  TagOpConstantInt = 0x43,
  TagOpConstantFP = 0x44,
  TagOpUndef = 0x45,
  TagOpNull = 0x46,
  TagOpGlobal = 0x47,
};

/// Structural type encoding: kind + width, recursing through function
/// types. Never the interned Type* — the hash must be identical across
/// Contexts and across runs.
void addType(HashStream &H, const Type *T) {
  H.add(TagType);
  H.add(static_cast<uint64_t>(T->getKind()));
  switch (T->getKind()) {
  case Type::Kind::Integer:
    H.add(T->getIntegerBitWidth());
    break;
  case Type::Kind::FunctionTy: {
    addType(H, T->getReturnType());
    const std::vector<Type *> &Params = T->getParamTypes();
    H.add(Params.size());
    for (const Type *P : Params)
      addType(H, P);
    break;
  }
  default:
    break;
  }
}

/// Dense canonical indices: blocks in list order, instructions in
/// traversal order (phis included — linearization skips them, hashing
/// must not). Assigned in a pre-pass so phi/branch forward references
/// resolve.
struct CanonicalIds {
  std::unordered_map<const Value *, uint64_t> Inst;
  std::unordered_map<const BasicBlock *, uint64_t> Block;

  explicit CanonicalIds(const Function &F) {
    uint64_t BlockId = 0, InstId = 0;
    for (const BasicBlock *BB : F.blocks()) {
      Block.emplace(BB, BlockId++);
      for (const Instruction *I : *BB)
        Inst.emplace(I, InstId++);
    }
  }
};

void addValue(HashStream &H, const Value *V, const CanonicalIds &Ids) {
  switch (V->getValueKind()) {
  case ValueKind::Argument:
    H.add(TagOpArgument);
    H.add(cast<Argument>(V)->getArgIndex());
    break;
  case ValueKind::GlobalVariable: {
    const auto *GV = cast<GlobalVariable>(V);
    H.add(TagOpGlobal);
    H.addString(GV->getName());
    addType(H, GV->getValueType());
    H.add(GV->getNumElements());
    break;
  }
  case ValueKind::ConstantInt:
    H.add(TagOpConstantInt);
    addType(H, V->getType());
    H.add(cast<ConstantInt>(V)->getZExtValue());
    break;
  case ValueKind::ConstantFP: {
    H.add(TagOpConstantFP);
    addType(H, V->getType());
    double D = cast<ConstantFP>(V)->getValue();
    uint64_t Bits;
    static_assert(sizeof(Bits) == sizeof(D), "double is not 64-bit");
    std::memcpy(&Bits, &D, sizeof(Bits));
    H.add(Bits);
    break;
  }
  case ValueKind::UndefValue:
    H.add(TagOpUndef);
    addType(H, V->getType());
    break;
  case ValueKind::ConstantPointerNull:
    H.add(TagOpNull);
    break;
  default:
    assert(isa<Instruction>(V) && "unexpected operand kind");
    H.add(TagOpInstruction);
    H.add(Ids.Inst.at(V));
    break;
  }
}

void addInstruction(HashStream &H, const Instruction *I,
                    const CanonicalIds &Ids) {
  H.add(TagInst);
  H.add(static_cast<uint64_t>(I->getOpcode()));
  addType(H, I->getType());
  H.add(I->getNumOperands());
  for (const Value *Op : I->operands())
    addValue(H, Op, Ids);
  H.add(I->getNumSuccessors());
  for (const BasicBlock *S : I->successors())
    H.add(Ids.Block.at(S));

  // Opcode payloads held outside the operand list.
  switch (I->getOpcode()) {
  case ValueKind::ICmp:
  case ValueKind::FCmp:
    H.add(static_cast<uint64_t>(cast<CmpInst>(I)->getPredicate()));
    break;
  case ValueKind::Alloca: {
    const auto *AI = cast<AllocaInst>(I);
    addType(H, AI->getAllocatedType());
    H.add(AI->getNumElements());
    break;
  }
  case ValueKind::Gep:
    addType(H, cast<GepInst>(I)->getElementType());
    break;
  case ValueKind::Call:
  case ValueKind::Invoke: {
    // Callees are direct Function members, not operands. Encode the
    // callee's name + signature type: content-addressing by called
    // symbol, stable across modules and runs.
    const Function *Callee = cast<CallBase>(I)->getCallee();
    H.addString(Callee->getName());
    addType(H, Callee->getFunctionType());
    break;
  }
  case ValueKind::Phi: {
    const auto *Phi = cast<PhiInst>(I);
    for (unsigned K = 0; K < Phi->getNumIncoming(); ++K)
      H.add(Ids.Block.at(Phi->getIncomingBlock(K)));
    break;
  }
  case ValueKind::Switch: {
    const auto *SW = cast<SwitchInst>(I);
    H.add(SW->getNumCases());
    for (unsigned K = 0; K < SW->getNumCases(); ++K)
      addValue(H, SW->getCaseValue(K), Ids);
    break;
  }
  case ValueKind::LandingPad:
    H.add(cast<LandingPadInst>(I)->isCleanup() ? 1 : 0);
    break;
  default:
    break;
  }
}

//===----------------------------------------------------------------------===//
// Lockstep structural equality
//===----------------------------------------------------------------------===//

bool valuesEquivalent(const Value *V1, const Value *V2,
                      const CanonicalIds &Ids1, const CanonicalIds &Ids2) {
  if (V1->getValueKind() != V2->getValueKind())
    return false;
  switch (V1->getValueKind()) {
  case ValueKind::Argument:
    return cast<Argument>(V1)->getArgIndex() ==
           cast<Argument>(V2)->getArgIndex();
  // Context-interned constants and module-owned globals: pointer
  // equality is value equality (globals deliberately strict — a
  // same-named global in another module is a different object).
  case ValueKind::GlobalVariable:
  case ValueKind::ConstantInt:
  case ValueKind::ConstantFP:
  case ValueKind::UndefValue:
  case ValueKind::ConstantPointerNull:
    return V1 == V2;
  default:
    return Ids1.Inst.at(V1) == Ids2.Inst.at(V2);
  }
}

bool instructionsEquivalent(const Instruction *I1, const Instruction *I2,
                            const CanonicalIds &Ids1,
                            const CanonicalIds &Ids2) {
  if (I1->getOpcode() != I2->getOpcode() || I1->getType() != I2->getType() ||
      I1->getNumOperands() != I2->getNumOperands() ||
      I1->getNumSuccessors() != I2->getNumSuccessors())
    return false;
  for (unsigned K = 0; K < I1->getNumOperands(); ++K)
    if (!valuesEquivalent(I1->getOperand(K), I2->getOperand(K), Ids1, Ids2))
      return false;
  for (unsigned K = 0; K < I1->getNumSuccessors(); ++K)
    if (Ids1.Block.at(I1->getSuccessor(K)) !=
        Ids2.Block.at(I2->getSuccessor(K)))
      return false;

  switch (I1->getOpcode()) {
  case ValueKind::ICmp:
  case ValueKind::FCmp:
    return cast<CmpInst>(I1)->getPredicate() ==
           cast<CmpInst>(I2)->getPredicate();
  case ValueKind::Alloca: {
    const auto *A1 = cast<AllocaInst>(I1), *A2 = cast<AllocaInst>(I2);
    return A1->getAllocatedType() == A2->getAllocatedType() &&
           A1->getNumElements() == A2->getNumElements();
  }
  case ValueKind::Gep:
    return cast<GepInst>(I1)->getElementType() ==
           cast<GepInst>(I2)->getElementType();
  case ValueKind::Call:
  case ValueKind::Invoke:
    // Strict: the exact same callee object, so thunking a member
    // through the leader's body never redirects a call.
    return cast<CallBase>(I1)->getCallee() == cast<CallBase>(I2)->getCallee();
  case ValueKind::Phi: {
    const auto *P1 = cast<PhiInst>(I1), *P2 = cast<PhiInst>(I2);
    for (unsigned K = 0; K < P1->getNumIncoming(); ++K)
      if (Ids1.Block.at(P1->getIncomingBlock(K)) !=
          Ids2.Block.at(P2->getIncomingBlock(K)))
        return false;
    return true;
  }
  case ValueKind::Switch: {
    const auto *S1 = cast<SwitchInst>(I1), *S2 = cast<SwitchInst>(I2);
    if (S1->getNumCases() != S2->getNumCases())
      return false;
    for (unsigned K = 0; K < S1->getNumCases(); ++K)
      if (S1->getCaseValue(K) != S2->getCaseValue(K))
        return false;
    return true;
  }
  case ValueKind::LandingPad:
    return cast<LandingPadInst>(I1)->isCleanup() ==
           cast<LandingPadInst>(I2)->isCleanup();
  default:
    return true;
  }
}

/// Replaces \p F's body with a direct tail-call thunk into \p MergedF
/// (same signature; arguments forwarded 1:1).
void buildDirectThunk(Function *F, Function *MergedF, Context &Ctx) {
  F->clearBody();
  BasicBlock *Entry = F->createBlock("entry");
  IRBuilder B(Ctx, Entry);
  std::vector<Value *> Args;
  Args.reserve(F->getNumArgs());
  for (unsigned I = 0; I < F->getNumArgs(); ++I)
    Args.push_back(F->getArg(I));
  CallInst *Call = B.createCall(MergedF, Args);
  if (F->getReturnType()->isVoid())
    B.createRetVoid();
  else
    B.createRet(Call);
}

} // namespace

StructuralHash computeStructuralHash(const Function &F) {
  assert(!F.isDeclaration() && "hashing a declaration");
  HashStream H;
  addType(H, F.getFunctionType());
  CanonicalIds Ids(F);
  H.add(F.getNumBlocks());
  for (const BasicBlock *BB : F.blocks()) {
    H.add(TagBlock);
    H.add(BB->size());
    for (const Instruction *I : *BB)
      addInstruction(H, I, Ids);
  }
  return H.finish();
}

bool structurallyEqual(const Function &F1, const Function &F2) {
  if (&F1 == &F2)
    return true;
  if (F1.getFunctionType() != F2.getFunctionType() ||
      F1.getNumBlocks() != F2.getNumBlocks())
    return false;
  CanonicalIds Ids1(F1), Ids2(F2);
  auto B1 = F1.blocks().begin(), B2 = F2.blocks().begin();
  for (; B1 != F1.blocks().end(); ++B1, ++B2) {
    if ((*B1)->size() != (*B2)->size())
      return false;
    auto I1 = (*B1)->begin(), I2 = (*B2)->begin();
    for (; I1 != (*B1)->end(); ++I1, ++I2)
      if (!instructionsEquivalent(*I1, *I2, Ids1, Ids2))
        return false;
  }
  return true;
}

std::unordered_set<const Function *> preClusterIdenticalFunctions(
    const std::vector<Module *> &Modules, Module &Host, TargetArch Arch,
    std::map<Function *, unsigned> &BaselineSize,
    const FaultInjectionConfig *Faults, PreClusterStats &Out) {
  std::unordered_set<const Function *> Pool;

  // Hash every mergeable function in module registration order ×
  // creation order; group by hash in first-seen order.
  std::vector<std::pair<StructuralHash, std::vector<Function *>>> Groups;
  std::map<StructuralHash, size_t> GroupIdx;
  for (Module *M : Modules)
    for (Function *F : M->functions()) {
      if (!F->isMergeable())
        continue;
      Pool.insert(F);
      try {
        if (Faults)
          maybeInjectFault(*Faults, FaultKind::Fingerprint, F->getName());
        StructuralHash Hash = computeStructuralHash(*F);
        auto It = GroupIdx.find(Hash);
        if (It == GroupIdx.end()) {
          It = GroupIdx.emplace(Hash, Groups.size()).first;
          Groups.emplace_back(Hash, std::vector<Function *>());
        }
        Groups[It->second].second.push_back(F);
      } catch (const std::exception &) {
        // A faulted fingerprint only costs this function its fast
        // path: it stays in the pool for the ordinary pipeline.
        ++Out.FingerprintFaults;
      }
    }

  Context &Ctx = Host.getContext();
  bool X86 = Arch == TargetArch::X86Like;
  for (auto &Group : Groups) {
    // The hash filter is confirmed exactly: greedily peel
    // structurally-equal sub-groups (hash-equal members referencing
    // distinct globals/callees end up in separate sub-groups; a
    // sub-group of one just stays in the pool).
    std::vector<Function *> Rest = Group.second;
    while (Rest.size() >= 2) {
      Function *Leader = Rest.front();
      std::vector<Function *> Members{Leader}, Next;
      for (size_t I = 1; I < Rest.size(); ++I) {
        if (structurallyEqual(*Leader, *Rest[I]))
          Members.push_back(Rest[I]);
        else
          Next.push_back(Rest[I]);
      }
      Rest = std::move(Next);
      if (Members.size() < 2)
        continue;

      // Profitability: k bodies collapse to one plus k direct thunks
      // (same per-thunk arithmetic as FunctionMerger's commit cost).
      unsigned BodySize = estimateFunctionSize(*Leader, Arch);
      unsigned PerThunk = (X86 ? 12u : 8u) + (X86 ? 5u : 4u) +
                          (X86 ? 1u : 2u) + 2 * Leader->getNumArgs();
      uint64_t K = Members.size();
      if ((K - 1) * uint64_t(BodySize) <= K * uint64_t(PerThunk))
        continue;

      std::string Name = Host.makeUniqueName(Leader->getName() + ".m");
      Function *MergedF = cloneFunctionInto(Leader, Host, Name, {}, {});
      // Same commit firewall as the pipeline: a clone that fails to
      // verify is erased and the whole group falls back to pairwise.
      if (!verifyFunction(*MergedF).ok()) {
        Host.eraseFunction(MergedF);
        continue;
      }
      for (Function *F : Members) {
        Pool.erase(F);
        buildDirectThunk(F, MergedF, Ctx);
      }
      BaselineSize[MergedF] = estimateFunctionSize(*MergedF, Arch);
      Pool.insert(MergedF);
      ++Out.ClusterCommits;
      if (Out.Groups)
        Out.Groups->push_back({MergedF, Members});
    }
  }
  return Pool;
}

} // namespace salssa
