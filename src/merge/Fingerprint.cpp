//===- merge/Fingerprint.cpp - Candidate ranking -------------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "merge/Fingerprint.h"
#include "support/RNG.h"
#include <limits>

using namespace salssa;

namespace {

/// The i-th MinHash function applied to one shingle. Distinct odd
/// multipliers keep the SketchHashes streams decorrelated.
uint64_t shingleHash(uint64_t Shingle, size_t I) {
  return mix64(Shingle * 0x9e3779b97f4a7c15ULL +
               (I + 1) * 0xd1342543de82ef95ULL);
}

} // namespace

Fingerprint Fingerprint::compute(const Function &F) {
  Fingerprint FP;
  FP.RetTy = F.getReturnType();
  FP.MinHash.fill(std::numeric_limits<uint64_t>::max());

  auto absorb = [&FP](uint64_t Shingle) {
    for (size_t I = 0; I < SketchHashes; ++I) {
      uint64_t H = shingleHash(Shingle, I);
      if (H < FP.MinHash[I])
        FP.MinHash[I] = H;
    }
  };

  for (const BasicBlock *BB : F) {
    // Shingles restart at block boundaries: block order is arbitrary, but
    // within-block opcode adjacency is the merge-relevant structure.
    uint64_t Prev = 0;
    bool HavePrev = false;
    for (const Instruction *I : *BB) {
      size_t Op = static_cast<size_t>(I->getOpcode());
      ++FP.OpcodeCount[Op];
      ++FP.GroupSum[Op >> 3];
      ++FP.Size;
      // Unigram shingle (tagged so it cannot collide with a bigram).
      absorb(Op | (1ULL << 32));
      if (HavePrev)
        absorb((Prev << 8) | Op);
      Prev = Op;
      HavePrev = true;
    }
  }
  return FP;
}

uint64_t Fingerprint::bandHash(size_t Band) const {
  assert(Band < SketchBands && "band index out of range");
  uint64_t H = 0x2545f4914f6cdd1dULL + Band;
  for (size_t R = 0; R < SketchRows; ++R)
    H = mix64(H ^ MinHash[Band * SketchRows + R]);
  return H;
}

uint64_t salssa::fingerprintDistanceLowerBound(const Fingerprint &A,
                                               const Fingerprint &B) {
  uint64_t D = 0;
  for (size_t G = 0; G < Fingerprint::NumGroups; ++G) {
    uint32_t X = A.GroupSum[G];
    uint32_t Y = B.GroupSum[G];
    D += X > Y ? X - Y : Y - X;
  }
  return D;
}

uint64_t salssa::fingerprintDistance(const Fingerprint &A,
                                     const Fingerprint &B, uint64_t Bound) {
  if (A.RetTy != B.RetTy)
    return std::numeric_limits<uint64_t>::max();
  uint64_t D = 0;
  for (size_t I = 0; I < Fingerprint::NumBuckets; ++I) {
    uint32_t X = A.OpcodeCount[I];
    uint32_t Y = B.OpcodeCount[I];
    D += X > Y ? X - Y : Y - X;
    if (D > Bound)
      return D; // partial sum: a lower bound, already past Bound
  }
  return D;
}
