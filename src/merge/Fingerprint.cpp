//===- merge/Fingerprint.cpp - Candidate ranking -------------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "merge/Fingerprint.h"
#include <limits>

using namespace salssa;

Fingerprint Fingerprint::compute(const Function &F) {
  Fingerprint FP;
  FP.RetTy = F.getReturnType();
  for (const BasicBlock *BB : F)
    for (const Instruction *I : *BB) {
      ++FP.OpcodeCount[static_cast<size_t>(I->getOpcode())];
      ++FP.Size;
    }
  return FP;
}

uint64_t salssa::fingerprintDistance(const Fingerprint &A,
                                     const Fingerprint &B) {
  if (A.RetTy != B.RetTy)
    return std::numeric_limits<uint64_t>::max();
  uint64_t D = 0;
  for (size_t I = 0; I < Fingerprint::NumBuckets; ++I) {
    uint32_t X = A.OpcodeCount[I];
    uint32_t Y = B.OpcodeCount[I];
    D += X > Y ? X - Y : Y - X;
  }
  return D;
}
