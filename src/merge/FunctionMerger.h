//===- merge/FunctionMerger.h - Pairwise merge pipeline ------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end pairwise pipeline of Fig 1: linearization, alignment,
/// code generation, clean-up, and the profitability decision, with
/// instrumentation for the time/memory experiments. Also provides thunk
/// creation for committing a merge (the original functions' bodies are
/// replaced with tail-call dispatchers into the merged function).
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_MERGE_FUNCTIONMERGER_H
#define SALSSA_MERGE_FUNCTIONMERGER_H

#include "codesize/SizeModel.h"
#include "merge/MergedFunctionGenerator.h"

namespace salssa {

/// Result of one pairwise merge attempt. When Valid, the merged function
/// exists in the module (uncommitted — call commitMerge or discardMerge).
struct MergeAttempt {
  bool Valid = false;
  GeneratedMerge Gen;
  MergeAttemptStats Stats;
  Function *F1 = nullptr;
  Function *F2 = nullptr;

  /// Estimated profit in bytes (positive = smaller after merging).
  int profit() const {
    return static_cast<int>(Stats.SizeF1) + static_cast<int>(Stats.SizeF2) -
           static_cast<int>(Stats.SizeMerged);
  }
};

/// Runs the full pipeline on \p F1 and \p F2 (which must share a return
/// type). \p SizeF1 / \p SizeF2 are the pre-pipeline sizes used by the
/// profitability model (for FMSA: sizes before register demotion).
/// The inputs are not modified.
///
/// When \p StagingModule is non-null the speculative merged function is
/// built there instead of F1's module. This is what makes the attempt
/// re-entrant across threads: the inputs' module is only read, and each
/// worker owns its own staging module (see MergePipeline). A staged
/// winner is moved into the real module with adoptMergedFunction before
/// committing.
MergeAttempt attemptMerge(Function &F1, Function &F2,
                          const MergeCodeGenOptions &Options,
                          TargetArch Arch, unsigned SizeF1, unsigned SizeF2,
                          Module *StagingModule = nullptr);

/// Moves \p Attempt's merged function out of its staging module into
/// \p Dst under \p Name (which must be unique in \p Dst). No-op when the
/// function already lives in \p Dst under that name.
void adoptMergedFunction(MergeAttempt &Attempt, Module &Dst,
                         const std::string &Name);

/// Replaces the bodies of both input functions with thunks into
/// \p Attempt's merged function. The merged function must have left any
/// staging module (adoptMergedFunction for staged attempts) but may live
/// in a different module than the inputs: cross-module commits thunk
/// into the host module, and calls dispatch by Function pointer, not by
/// per-module symbol tables.
void commitMerge(MergeAttempt &Attempt, Context &Ctx);

/// Deletes the merged function of a rejected attempt (from whichever
/// module — staging or real — currently owns it).
void discardMerge(MergeAttempt &Attempt);

} // namespace salssa

#endif // SALSSA_MERGE_FUNCTIONMERGER_H
