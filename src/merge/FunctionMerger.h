//===- merge/FunctionMerger.h - Pairwise merge pipeline ------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end pairwise pipeline of Fig 1: linearization, alignment,
/// code generation, clean-up, and the profitability decision, with
/// instrumentation for the time/memory experiments. Also provides thunk
/// creation for committing a merge (the original functions' bodies are
/// replaced with tail-call dispatchers into the merged function).
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_MERGE_FUNCTIONMERGER_H
#define SALSSA_MERGE_FUNCTIONMERGER_H

#include "codesize/SizeModel.h"
#include "merge/MergedFunctionGenerator.h"

namespace salssa {

/// Result of one pairwise merge attempt. When Valid, the merged function
/// exists in the module (uncommitted — call commitMerge or discardMerge).
struct MergeAttempt {
  bool Valid = false;
  GeneratedMerge Gen;
  MergeAttemptStats Stats;
  Function *F1 = nullptr;
  Function *F2 = nullptr;

  /// Estimated profit in bytes (positive = smaller after merging).
  int profit() const {
    return static_cast<int>(Stats.SizeF1) + static_cast<int>(Stats.SizeF2) -
           static_cast<int>(Stats.SizeMerged);
  }
};

/// Runs the full pipeline on \p F1 and \p F2 (which must share a return
/// type). \p SizeF1 / \p SizeF2 are the pre-pipeline sizes used by the
/// profitability model (for FMSA: sizes before register demotion).
/// The inputs are not modified.
MergeAttempt attemptMerge(Function &F1, Function &F2,
                          const MergeCodeGenOptions &Options,
                          TargetArch Arch, unsigned SizeF1, unsigned SizeF2);

/// Replaces the bodies of both input functions with thunks into
/// \p Attempt's merged function.
void commitMerge(MergeAttempt &Attempt, Context &Ctx);

/// Deletes the merged function of a rejected attempt.
void discardMerge(MergeAttempt &Attempt);

} // namespace salssa

#endif // SALSSA_MERGE_FUNCTIONMERGER_H
