//===- merge/FunctionMerger.h - Pairwise merge pipeline ------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end pairwise pipeline of Fig 1: linearization, alignment,
/// code generation, clean-up, and the profitability decision, with
/// instrumentation for the time/memory experiments. Also provides thunk
/// creation for committing a merge (the original functions' bodies are
/// replaced with tail-call dispatchers into the merged function).
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_MERGE_FUNCTIONMERGER_H
#define SALSSA_MERGE_FUNCTIONMERGER_H

#include "codesize/SizeModel.h"
#include "merge/Fingerprint.h"
#include "merge/MergedFunctionGenerator.h"
#include "support/FaultInjection.h"
#include <cstdint>
#include <utility>
#include <vector>

namespace salssa {

/// Result of one pairwise merge attempt. When Valid, the merged function
/// exists in the module (uncommitted — call commitMerge or discardMerge).
struct MergeAttempt {
  bool Valid = false;
  GeneratedMerge Gen;
  MergeAttemptStats Stats;
  Function *F1 = nullptr;
  Function *F2 = nullptr;

  /// The full alignment as (Idx1, Idx2) entries with -1 gaps, captured
  /// when attemptMerge ran with CaptureAlignment (the decision cache
  /// records it for the committed winner so a warm run can regenerate
  /// the identical body with zero aligner work). Empty otherwise.
  std::vector<std::pair<int32_t, int32_t>> AlignEntries;

  /// Estimated profit in bytes (positive = smaller after merging).
  int profit() const {
    return static_cast<int>(Stats.SizeF1) + static_cast<int>(Stats.SizeF2) -
           static_cast<int>(Stats.SizeMerged);
  }
};

/// A recorded alignment offered back to attemptMerge by the warm
/// decision cache. Validated entry by entry against the pair's current
/// linearization (lengths, full coverage in order, every match passing
/// itemsMatch); any mismatch silently falls back to the live aligner,
/// so a stale or corrupt payload can cost speed but never correctness.
struct AlignmentReplay {
  uint32_t SeqLen1 = 0; ///< recorded linearized length of F1
  uint32_t SeqLen2 = 0; ///< recorded linearized length of F2
  const std::vector<std::pair<int32_t, int32_t>> *Entries = nullptr;
};

/// A cheap, calibrated estimator of merge profit from fingerprints alone
/// — no linearization, no alignment, no code generation. The driver's
/// profit-guided selection modes (SelectionStrategy::Profit/Adaptive)
/// use it to re-rank a widened distance slate before spending alignment
/// time, so the estimate must cost O(1) given a precomputed distance.
///
/// Model: the opcode-histogram overlap |A ∩ B| = (|A| + |B| − D) / 2
/// (D = Manhattan distance) upper-bounds how many instruction slots the
/// aligner can share — but only an *ordered* alignment realizes them,
/// and histogram intersection is blind to order. The expected aligned
/// fraction is discounted by the pair's similarity ratio
/// sim = 2·overlap / (|A| + |B|) ∈ [0, 1]: near-clones (sim → 1) realize
/// almost all of their overlap, structurally different pairs almost none
/// (this quadratic-in-sim shape is what stops the estimate from chasing
/// big far-away partners whose raw overlap is large). Each expected
/// aligned slot is worth ~BytesPerOverlap of the size model's lowered
/// bytes, every mismatched slot (D of them) costs a fraction of a
/// select/dispatch (BytesPerMismatch), and a committed merge pays a
/// fixed toll (OverheadBytes: two thunks + the fid parameter plumbing):
///
///   estimate = BytesPerOverlap·overlap·sim
///            − BytesPerMismatch·D − OverheadBytes
///
/// The estimate is monotone: it strictly increases in overlap (at fixed
/// |A|+|B|) and strictly decreases in distance (selection_test.cpp pins
/// both).
///
/// BytesPerOverlap is *calibrated online* against FunctionMerger attempt
/// stats: every executed attempt reveals its actual profit()
/// (SizeF1 + SizeF2 − SizeMerged), and observe() folds the implied
/// bytes-per-overlap into an EMA, clamped to a sane range so degenerate
/// attempts cannot capsize the model. Calibration happens only at the
/// serial commit stage, in record order — records are identical at every
/// thread count, so the model (and everything ranked with it) is too.
struct ProfitModel {
  double BytesPerOverlap = 3.5;  ///< EMA-calibrated (seeded per arch)
  double BytesPerMismatch = 0.5; ///< select/dispatch toll per unmatched op
  double OverheadBytes = 48.0;   ///< thunks + fid plumbing per commit

  /// EMA smoothing and clamp bounds for the online calibration.
  static constexpr double Alpha = 0.125;
  static constexpr double MinBytesPerOverlap = 0.25;
  static constexpr double MaxBytesPerOverlap = 12.0;

  /// Seeds the constants from the target's size model (average lowered
  /// instruction bytes, thunk overhead for a small signature).
  static ProfitModel forArch(TargetArch Arch);

  /// Opcode-histogram intersection size: the number of instruction slots
  /// both functions can cover with the same opcode, (|A|+|B|−D)/2.
  static uint64_t overlap(const Fingerprint &A, const Fingerprint &B,
                          uint64_t Distance) {
    uint64_t Total = uint64_t(A.Size) + uint64_t(B.Size);
    return Distance >= Total ? 0 : (Total - Distance) / 2;
  }

  /// Expected aligned slots: the histogram overlap discounted by the
  /// similarity ratio (see the model note above).
  static double expectedAligned(const Fingerprint &A, const Fingerprint &B,
                                uint64_t Distance) {
    uint64_t Total = uint64_t(A.Size) + uint64_t(B.Size);
    if (Total == 0)
      return 0;
    double Ov = double(overlap(A, B, Distance));
    return Ov * (2.0 * Ov / double(Total));
  }

  /// Estimated commit profit in size-model bytes (positive = shrink).
  int64_t estimate(const Fingerprint &A, const Fingerprint &B,
                   uint64_t Distance) const {
    return static_cast<int64_t>(BytesPerOverlap *
                                    expectedAligned(A, B, Distance) -
                                BytesPerMismatch * double(Distance) -
                                OverheadBytes);
  }

  /// Folds one executed attempt into the calibration: \p Overlap and
  /// \p Distance as passed to estimate(), \p ActualProfit from
  /// MergeAttempt::profit(). No-op for zero overlap.
  void observe(uint64_t Overlap, uint64_t Distance, int ActualProfit);
};

/// Runs the full pipeline on \p F1 and \p F2 (which must share a return
/// type). \p SizeF1 / \p SizeF2 are the pre-pipeline sizes used by the
/// profitability model (for FMSA: sizes before register demotion).
/// The inputs are not modified.
///
/// When \p StagingModule is non-null the speculative merged function is
/// built there instead of F1's module. This is what makes the attempt
/// re-entrant across threads: the inputs' module is only read, and each
/// worker owns its own staging module (see MergePipeline). A staged
/// winner is moved into the real module with adoptMergedFunction before
/// committing.
///
/// \p Budget, when non-null, bounds the attempt's resources (see
/// AttemptBudget): a capped-out attempt returns Valid == false with
/// Stats.Outcome reporting which stage rejected, never a partial merged
/// function. \p Faults, when non-null and armed, arms the deterministic
/// fault points (support/FaultInjection.h): AlignmentThrow escapes as an
/// InjectedFault exception — callers sit behind an attempt guard —
/// CodeGenCorruption deterministically corrupts the merged body for the
/// commit firewall to catch, and BudgetBlowout forces the
/// budget-rejected path. Null for both (the default, and the only mode
/// direct callers outside the driver use) is the plain uncapped attempt.
///
/// \p Replay, when non-null, offers a cached alignment (see
/// AlignmentReplay): if it validates against the pair's current
/// linearization the Needleman-Wunsch stage is skipped entirely
/// (Stats.AlignmentBytes reports 0); otherwise the live aligner runs as
/// usual. \p CaptureAlignment makes the attempt fill
/// MergeAttempt::AlignEntries for the decision cache to record.
MergeAttempt attemptMerge(Function &F1, Function &F2,
                          const MergeCodeGenOptions &Options,
                          TargetArch Arch, unsigned SizeF1, unsigned SizeF2,
                          Module *StagingModule = nullptr,
                          const AttemptBudget *Budget = nullptr,
                          const FaultInjectionConfig *Faults = nullptr,
                          const AlignmentReplay *Replay = nullptr,
                          bool CaptureAlignment = false);

/// Moves \p Attempt's merged function out of its staging module into
/// \p Dst under \p Name (which must be unique in \p Dst). No-op when the
/// function already lives in \p Dst under that name.
void adoptMergedFunction(MergeAttempt &Attempt, Module &Dst,
                         const std::string &Name);

/// Replaces the bodies of both input functions with thunks into
/// \p Attempt's merged function. The merged function must have left any
/// staging module (adoptMergedFunction for staged attempts) but may live
/// in a different module than the inputs: cross-module commits thunk
/// into the host module, and calls dispatch by Function pointer, not by
/// per-module symbol tables.
void commitMerge(MergeAttempt &Attempt, Context &Ctx);

/// Deletes the merged function of a rejected attempt (from whichever
/// module — staging or real — currently owns it).
void discardMerge(MergeAttempt &Attempt);

} // namespace salssa

#endif // SALSSA_MERGE_FUNCTIONMERGER_H
