//===- merge/MergeService.h - Long-lived incremental merge sessions -----------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The incremental merge service: a long-lived, compile-server-shaped
/// session that keeps a whole-program merge warm across edit/rebuild
/// cycles. Where CrossModuleMerger is batch — build a pool, merge once,
/// exit — MergeService owns the session state that used to die with the
/// pipeline:
///
///  - the planner CandidateIndex over every live original (insert/retire
///    per delta, never rebuilt on the healthy path);
///  - per merge-compatibility class (per-return-type partition): the
///    class's pipeline journal, committed-merge records and stats from
///    its last run — the state that lets an untouched class skip its
///    re-merge entirely;
///  - an archive of every original body (thunk-free clones in a private
///    module), so un-committing a merge is a body restore, not a rerun;
///  - the structural-hash table over tracked functions (no-op-edit
///    detection and delta integrity);
///  - a quarantine ledger with *decay*: functions struck out by the
///    pipeline's quarantine ladder re-enter candidacy after
///    QuarantineDecayEpochs deltas (strikes age out — a long-lived
///    session must not ban a function forever for transient faults).
///
/// ## Delta protocol
///
/// Clients submit deltas as an exclusive batch:
///
/// \code
///   MergeService Svc(Opts);
///   Svc.addModule(M0); Svc.addModule(M1);
///   Svc.initialize();                       // epoch 0: full session
///   {
///     auto Batch = Svc.beginDelta();        // locks the session
///     Batch.checkoutForEdit(F);             // F's original body is back
///     mutate(F);                            // client edit, any shape
///     Mods[1]->createFunction("g", ...);    // client adds directly
///     MergeDelta D;
///     D.Changed = {F}; D.Added = {G}; D.Deleted = {H};
///     Batch.apply(D);                       // epoch N: localized re-merge
///   }                                       // unlock
/// \endcode
///
/// beginDelta() holds the session mutex until the batch object dies, so
/// concurrent client batches serialize wholesale: no client can ever
/// observe (or edit into) a half-applied session — snapshot isolation by
/// construction. Rules: every previously-merged changed function must be
/// checked out before mutation (checkout restores the thunk-free
/// original to edit); a changed function keeps its signature (signature
/// changes are delete + add); deleted functions must have no remaining
/// call sites (generated workloads guarantee this; real clients own it).
///
/// ## Equivalence contract
///
/// After every applyDelta the session is *provably equivalent to a
/// from-scratch run over the current pool state*: same committed merges,
/// same records (names, outcomes, order), same module bytes — at every
/// selection mode x thread count x shard configuration
/// (tests/merge_service_test.cpp pins this differentially against
/// CrossModuleMerger). The mechanism is the sharded runner's proven
/// splice: each class's pipeline journal is replayed against the global
/// size-ordered plan with the host's unique-name counter reset to its
/// pre-merge base, so name burns, record order and FunctionOrder all
/// reconstruct the cold run exactly — a clean class replays its retained
/// journal, a dirty class re-runs first.
///
/// ## Fault containment
///
/// Service-level fault points (FaultKind::Ranking, SymbolResolution,
/// Fingerprint via support/FaultInjection.h) fire while a delta is being
/// planned. Any exception there degrades the delta to a *counted full
/// re-merge* (Stats.DegradedToFullRemerge, fullRemerges()): every class
/// is un-committed, registration is rebuilt from scratch, and the whole
/// pool re-merges — with the service-level fault points disarmed on the
/// recovery path so a deterministic fault cannot degrade forever.
/// Pipeline-level faults (alignment/codegen/task/budget) stay contained
/// inside the pipelines exactly as in batch sessions and never degrade a
/// delta. A faulted delta is never a corrupt session.
///
/// ## Warm paths & host re-election
///
/// The session-level fast paths compose with the service on every *full*
/// session build — initialize(), a degraded delta, a host re-election,
/// and every delta while HashClustering is on — never on a localized
/// delta epoch:
///
///  - `Driver.DecisionCachePath`: the cache file is loaded before the
///    class pipelines run and the run's recordings are persisted after
///    the splice, exactly like the batch sessions. A restarted service
///    pointed at the same file warm-replays its epoch 0 (the merge
///    daemon's restart story, service/Daemon.h).
///  - `Driver.HashClustering`: the pre-cluster pass commits exact-clone
///    groups into the host ahead of registration; consumed members are
///    tracked separately (their pristine bodies archived) so a later
///    delta can restore them. The cluster prologue is whole-pool by
///    nature, so *any* applied delta rebuilds the full session —
///    re-cluster + re-merge, byte-identical to a cold clustered run of
///    the new pool (MergeServiceStats::ReclusteredFull counts it);
///    incrementality is traded away while clustering is on.
///
/// `MergeServiceOptions::ReelectHost` re-runs the host-policy election
/// after each delta's bookkeeping refresh, scored over the session's
/// pristine archive (what a cold run would score after resolution). When
/// the leader moves, the session rebuilds wholesale on the new host —
/// proven byte-identical to a cold merge hosted there — and
/// MergeServiceStats::HostReelected reports it.
///
/// v1 limits: SalSSA technique only. Destroy the service before the
/// modules it serves (the archive keeps operand references into them).
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_MERGE_MERGESERVICE_H
#define SALSSA_MERGE_MERGESERVICE_H

#include "ir/SymbolResolution.h"
#include "merge/CandidateIndex.h"
#include "merge/CrossModuleMerger.h"
#include "merge/MergePipeline.h"
#include "merge/StructuralHash.h"
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace salssa {

/// Service configuration.
struct MergeServiceOptions {
  /// The per-run merge configuration (technique must stay SalSSA).
  /// ShardCount here only schedules: != 1 runs dirty-class pipelines
  /// concurrently over the thread pool, 1 runs them serially — outcomes
  /// are identical either way (the determinism contract).
  /// DecisionCachePath and HashClustering are honoured on full session
  /// builds (see "Warm paths & host re-election" above); HashClustering
  /// additionally turns every delta into a counted full rebuild.
  MergeDriverOptions Driver;
  /// Quarantine-ladder strike decay: a function the ladder struck out
  /// re-enters candidacy after this many further epochs (its class
  /// re-merges with it back in the pool). 0 (the default) = strikes
  /// never decay (the batch sessions' behaviour). Unit: epochs.
  unsigned QuarantineDecayEpochs = 0;
  /// Re-run the Driver.Host election after every applied delta, scored
  /// over the pristine archive; when the score leader moved, rebuild
  /// the session on the new host (cold-equivalent by construction).
  /// Default false = the host elected at initialize() is pinned for the
  /// session's lifetime. Ignored when setHostModule() pinned the host
  /// explicitly, under HostPolicy::First (the election can never move),
  /// and on the degraded fault-recovery path.
  bool ReelectHost = false;
};

/// One delta batch: functions whose bodies changed, functions the client
/// created in registered modules since the last epoch, and functions to
/// remove. All pointers must be definitions in registered modules.
struct MergeDelta {
  std::vector<Function *> Changed;
  std::vector<Function *> Added;
  std::vector<Function *> Deleted;

  bool empty() const {
    return Changed.empty() && Added.empty() && Deleted.empty();
  }
};

/// Per-epoch result. Session is the cold-equivalent whole-session view
/// (what a from-scratch CrossModuleMerger run over the current pool
/// would report for merges/records/sizes); the Epoch* counters isolate
/// the work actually spent on *this* delta (dirty classes only) — the
/// incrementality win is Session-sized results at Epoch-sized cost.
struct MergeServiceStats {
  CrossModuleStats Session;
  unsigned Epoch = 0;
  unsigned DirtyClasses = 0;
  unsigned TotalClasses = 0;       ///< live classes after the epoch
  unsigned UncommittedMerges = 0;  ///< merges undone before the re-merge
  unsigned QuarantineReleases = 0; ///< ledger entries decayed this epoch
  /// Declared-changed functions whose structural hash did not move
  /// (no-op edits; their class still re-merges — checkout restored it).
  /// Not computed on full-rebuild epochs (ReclusteredFull below).
  unsigned NoopChanges = 0;
  bool DegradedToFullRemerge = false;
  /// The host election moved this epoch (MergeServiceOptions::
  /// ReelectHost): the session rebuilt wholesale on the new leader.
  bool HostReelected = false;
  /// HashClustering forced this delta into a full re-cluster + re-merge
  /// (the cluster prologue is whole-pool; see the file comment).
  bool ReclusteredFull = false;
  // Work spent this epoch, summed over the dirty classes' runs only:
  uint64_t EpochPairingDistanceCalls = 0;
  uint64_t EpochPairingProbes = 0;
  unsigned EpochAttempts = 0;
};

class MergeService {
public:
  explicit MergeService(const MergeServiceOptions &Options);
  ~MergeService();
  MergeService(const MergeService &) = delete;
  MergeService &operator=(const MergeService &) = delete;

  /// Module registration, before initialize(). Same rules as
  /// CrossModuleMerger: one shared Context, host must be registered.
  void addModule(Module &M);
  void setHostModule(Module &M);
  Module *hostModule() const { return Host; }

  /// Runs the initial full session (epoch 0). Call exactly once.
  MergeServiceStats initialize();

  /// An exclusive delta batch: holds the session lock from construction
  /// to destruction. Obtain via beginDelta(); apply() at most once.
  class DeltaBatch {
  public:
    DeltaBatch(const DeltaBatch &) = delete;
    DeltaBatch &operator=(const DeltaBatch &) = delete;
    ~DeltaBatch() = default;

    /// Prepares \p F for client editing: restores its thunk-free
    /// original body from the archive (a no-op-shaped rewrite when F
    /// was never merged) and records the checkout. Every checked-out
    /// function must appear in the applied delta's Changed list.
    Function *checkoutForEdit(Function *F);

    /// Applies the delta and runs the localized re-merge. Call at most
    /// once; consumes the batch (the session lock is released on
    /// return, so introspection works immediately afterwards).
    MergeServiceStats apply(const MergeDelta &Delta);

  private:
    friend class MergeService;
    explicit DeltaBatch(MergeService &S)
        : S(S), Lock(S.SessionMutex) {}
    MergeService &S;
    std::unique_lock<std::mutex> Lock;
    std::unordered_set<const Function *> CheckedOut;
    bool Applied = false;
  };

  /// Starts an exclusive delta batch (blocks while another batch or
  /// initialize() holds the session).
  DeltaBatch beginDelta() { return DeltaBatch(*this); }

  // --- Introspection (each takes the session lock; do not call while
  // --- holding an unapplied DeltaBatch) ------------------------------------
  unsigned epoch() const;
  unsigned fullRemerges() const;    ///< cumulative degraded deltas
  unsigned hostReelections() const; ///< cumulative host moves
  bool isQuarantined(const Function *F) const;
  size_t quarantinedCount() const;
  /// The retained structural hash of a tracked function.
  StructuralHash structuralHash(const Function *F) const;
  MergeServiceStats lastStats() const;

private:
  /// Everything the session knows about one live original function.
  struct TrackedFunction {
    uint32_t Id = 0;       ///< planner CandidateIndex id
    uint32_t ModuleId = 0; ///< index into Modules
    Fingerprint FP;        ///< element-stable (node-based map)
    StructuralHash Hash;
    Function *Archived = nullptr; ///< thunk-free clone in the archive
    unsigned Baseline = 0;        ///< estimateFunctionSize of the original
  };

  /// Retained per merge-compatibility class: the journal/records/stats
  /// of its last pipeline run plus the exact pool filter that run used
  /// (the splice must replay against the pool *as of* that run).
  struct ClassState {
    std::vector<PipelineEntryTrace> Journal;
    MergeDriverStats Stats;
    std::unordered_set<const Function *> Members;
    std::vector<Function *> NewQuarantine; ///< per-run ladder sink
    std::unique_ptr<Module> Scratch;       ///< live only run -> splice
    MergeDriverOptions RunOptions;         ///< outlives the pipeline's ref
    /// Serial-commit cache recordings of the last run; only filled on
    /// warm full-session builds (EpochCache set), drained right after.
    std::vector<DecisionCacheUpdate> CacheUpdates;
  };

  /// A function consumed by a HashClustering group: its body is a direct
  /// thunk onto the committed cluster body, its pristine self lives on
  /// in the archive (deltas restore it before re-clustering).
  struct ClusterMember {
    Function *Archived = nullptr; ///< pristine clone in the archive
    uint32_t ModuleId = 0;        ///< index into Modules
    unsigned Baseline = 0;        ///< pristine estimateFunctionSize
  };

  void registerFunction(Function *F, uint32_t ModuleId);
  void archiveFunction(Function *F, TrackedFunction &TF);
  void restoreBody(Function *F, const Function *Src);
  uint32_t moduleIdOf(const Module *M) const;
  /// Un-commits every retained merge of the given classes: restores
  /// archived originals (except functions in \p SkipRestore or
  /// \p Deleted), clears deleted bodies, erases the merged functions
  /// from the host in forward commit order, and drops the classes'
  /// journals/stats/members.
  void uncommitClasses(const std::set<Type *> &Dirty,
                       const std::unordered_set<const Function *> &SkipRestore,
                       const std::unordered_set<const Function *> &Deleted,
                       MergeServiceStats &Out);
  void eraseDeleted(const std::vector<Function *> &Deleted);
  /// Restores every cluster member's pristine body from its archive
  /// clone, except members the client edited or deleted this delta.
  void
  restoreClusterMembersExcept(const std::unordered_set<const Function *> &Skip,
                              const std::unordered_set<const Function *>
                                  &Deleted);
  /// Erases the committed cluster bodies (and their bookkeeping) from
  /// the host; members must have been restored or erased first.
  void eraseClusterBodies();
  /// Rebuilds the whole session over the current pool — the shared core
  /// of initialize(), the degraded path, host re-election and every
  /// clustering delta. Caller contract: every original body is live and
  /// pristine in its registered module (thunks restored, merged and
  /// cluster bodies erased, deletions applied), resolution has run,
  /// Host is chosen and its unique-name counter sits at the pre-burn
  /// base. Runs the warm-path prologues (decision-cache load/save,
  /// pre-clustering), re-registers everything, and merges every class.
  void rebuildSession(MergeServiceStats &Out);
  /// The Driver.Host election re-scored from the pristine archive
  /// (what a cold run scores after resolution); ties to the
  /// earlier-registered module, exactly like selectHostModule.
  Module *electHostFromArchive() const;
  /// Runs pipelines for the dirty classes, splices every class's journal
  /// into the host against the global plan, and fills Out.Session.
  void runEpoch(const std::set<Type *> &Dirty, MergeServiceStats &Out);
  void degradeToFullRemerge(const MergeDelta &Delta, MergeServiceStats &Out);
  MergeServiceStats applyDeltaLocked(const MergeDelta &Delta,
                                     const std::unordered_set<const Function *>
                                         &BatchCheckouts);

  MergeServiceOptions Options;
  std::vector<Module *> Modules;
  Module *Host = nullptr;
  bool ExplicitHost = false;
  bool Initialized = false;

  std::unordered_map<const Function *, TrackedFunction> Tracked;
  std::map<Function *, unsigned> Baselines; ///< pipeline-shaped view
  CandidateIndex Planner;
  uint32_t NextId = 0;
  std::map<Type *, ClassState> Classes;
  std::unique_ptr<Module> Archive;
  /// Struck-out functions -> the epoch the ladder retired them.
  std::map<const Function *, unsigned> QuarantinedAt;
  /// HashClustering session state (empty when the flag is off): consumed
  /// members and the committed bodies in commit order.
  std::map<Function *, ClusterMember> ClusterMembers;
  std::vector<Function *> ClusterBodies;

  unsigned Epoch = 0;
  unsigned HostCounterBase = 0; ///< unique-name counter before splice burns
  /// Host counter before even the cluster prologue's burns (==
  /// HostCounterBase when HashClustering is off); full rebuilds restart
  /// name allocation here.
  unsigned PreClusterCounterBase = 0;
  unsigned FullRemergeCount = 0;
  unsigned HostReelectionCount = 0;
  // Session-level warm-path counters, mirrored into Session.Driver each
  // epoch (cold sessions set them once per run).
  uint64_t SessionClusterCommits = 0;
  uint64_t SessionClusterFaults = 0;
  uint64_t SessionCacheLoadRejected = 0;
  /// Warm cache exposed to the class pipelines, non-null only while
  /// rebuildSession runs a cache-backed full build.
  const DecisionCache *EpochCache = nullptr;
  SymbolResolutionStats LastResolution;
  FaultInjectionConfig SessionFaults; ///< resolved at initialize()
  MergeServiceStats Last;

  mutable std::mutex SessionMutex;
};

} // namespace salssa

#endif // SALSSA_MERGE_MERGESERVICE_H
