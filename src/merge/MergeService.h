//===- merge/MergeService.h - Long-lived incremental merge sessions -----------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The incremental merge service: a long-lived, compile-server-shaped
/// session that keeps a whole-program merge warm across edit/rebuild
/// cycles. Where CrossModuleMerger is batch — build a pool, merge once,
/// exit — MergeService owns the session state that used to die with the
/// pipeline:
///
///  - the planner CandidateIndex over every live original (insert/retire
///    per delta, never rebuilt on the healthy path);
///  - per merge-compatibility class (per-return-type partition): the
///    class's pipeline journal, committed-merge records and stats from
///    its last run — the state that lets an untouched class skip its
///    re-merge entirely;
///  - an archive of every original body (thunk-free clones in a private
///    module), so un-committing a merge is a body restore, not a rerun;
///  - the structural-hash table over tracked functions (no-op-edit
///    detection and delta integrity);
///  - a quarantine ledger with *decay*: functions struck out by the
///    pipeline's quarantine ladder re-enter candidacy after
///    QuarantineDecayEpochs deltas (strikes age out — a long-lived
///    session must not ban a function forever for transient faults).
///
/// ## Delta protocol
///
/// Clients submit deltas as an exclusive batch:
///
/// \code
///   MergeService Svc(Opts);
///   Svc.addModule(M0); Svc.addModule(M1);
///   Svc.initialize();                       // epoch 0: full session
///   {
///     auto Batch = Svc.beginDelta();        // locks the session
///     Batch.checkoutForEdit(F);             // F's original body is back
///     mutate(F);                            // client edit, any shape
///     Mods[1]->createFunction("g", ...);    // client adds directly
///     MergeDelta D;
///     D.Changed = {F}; D.Added = {G}; D.Deleted = {H};
///     Batch.apply(D);                       // epoch N: localized re-merge
///   }                                       // unlock
/// \endcode
///
/// beginDelta() holds the session mutex until the batch object dies, so
/// concurrent client batches serialize wholesale: no client can ever
/// observe (or edit into) a half-applied session — snapshot isolation by
/// construction. Rules: every previously-merged changed function must be
/// checked out before mutation (checkout restores the thunk-free
/// original to edit); a changed function keeps its signature (signature
/// changes are delete + add); deleted functions must have no remaining
/// call sites (generated workloads guarantee this; real clients own it).
///
/// ## Equivalence contract
///
/// After every applyDelta the session is *provably equivalent to a
/// from-scratch run over the current pool state*: same committed merges,
/// same records (names, outcomes, order), same module bytes — at every
/// selection mode x thread count x shard configuration
/// (tests/merge_service_test.cpp pins this differentially against
/// CrossModuleMerger). The mechanism is the sharded runner's proven
/// splice: each class's pipeline journal is replayed against the global
/// size-ordered plan with the host's unique-name counter reset to its
/// pre-merge base, so name burns, record order and FunctionOrder all
/// reconstruct the cold run exactly — a clean class replays its retained
/// journal, a dirty class re-runs first.
///
/// ## Fault containment
///
/// Service-level fault points (FaultKind::Ranking, SymbolResolution,
/// Fingerprint via support/FaultInjection.h) fire while a delta is being
/// planned. Any exception there degrades the delta to a *counted full
/// re-merge* (Stats.DegradedToFullRemerge, fullRemerges()): every class
/// is un-committed, registration is rebuilt from scratch, and the whole
/// pool re-merges — with the service-level fault points disarmed on the
/// recovery path so a deterministic fault cannot degrade forever.
/// Pipeline-level faults (alignment/codegen/task/budget) stay contained
/// inside the pipelines exactly as in batch sessions and never degrade a
/// delta. A faulted delta is never a corrupt session.
///
/// v1 limits: SalSSA technique only; HashClustering and DecisionCachePath
/// are rejected (their session-level pre-passes are not incremental yet).
/// Destroy the service before the modules it serves (the archive keeps
/// operand references into them).
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_MERGE_MERGESERVICE_H
#define SALSSA_MERGE_MERGESERVICE_H

#include "ir/SymbolResolution.h"
#include "merge/CandidateIndex.h"
#include "merge/CrossModuleMerger.h"
#include "merge/MergePipeline.h"
#include "merge/StructuralHash.h"
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace salssa {

/// Service configuration.
struct MergeServiceOptions {
  /// The per-run merge configuration (technique must stay SalSSA;
  /// HashClustering and DecisionCachePath must stay off). ShardCount
  /// here only schedules: != 1 runs dirty-class pipelines concurrently
  /// over the thread pool, 1 runs them serially — outcomes are
  /// identical either way (the determinism contract).
  MergeDriverOptions Driver;
  /// Quarantine-ladder strike decay: a function the ladder struck out
  /// re-enters candidacy after this many further epochs (its class
  /// re-merges with it back in the pool). 0 = strikes never decay (the
  /// batch sessions' behaviour).
  unsigned QuarantineDecayEpochs = 0;
};

/// One delta batch: functions whose bodies changed, functions the client
/// created in registered modules since the last epoch, and functions to
/// remove. All pointers must be definitions in registered modules.
struct MergeDelta {
  std::vector<Function *> Changed;
  std::vector<Function *> Added;
  std::vector<Function *> Deleted;

  bool empty() const {
    return Changed.empty() && Added.empty() && Deleted.empty();
  }
};

/// Per-epoch result. Session is the cold-equivalent whole-session view
/// (what a from-scratch CrossModuleMerger run over the current pool
/// would report for merges/records/sizes); the Epoch* counters isolate
/// the work actually spent on *this* delta (dirty classes only) — the
/// incrementality win is Session-sized results at Epoch-sized cost.
struct MergeServiceStats {
  CrossModuleStats Session;
  unsigned Epoch = 0;
  unsigned DirtyClasses = 0;
  unsigned TotalClasses = 0;       ///< live classes after the epoch
  unsigned UncommittedMerges = 0;  ///< merges undone before the re-merge
  unsigned QuarantineReleases = 0; ///< ledger entries decayed this epoch
  /// Declared-changed functions whose structural hash did not move
  /// (no-op edits; their class still re-merges — checkout restored it).
  unsigned NoopChanges = 0;
  bool DegradedToFullRemerge = false;
  // Work spent this epoch, summed over the dirty classes' runs only:
  uint64_t EpochPairingDistanceCalls = 0;
  uint64_t EpochPairingProbes = 0;
  unsigned EpochAttempts = 0;
};

class MergeService {
public:
  explicit MergeService(const MergeServiceOptions &Options);
  ~MergeService();
  MergeService(const MergeService &) = delete;
  MergeService &operator=(const MergeService &) = delete;

  /// Module registration, before initialize(). Same rules as
  /// CrossModuleMerger: one shared Context, host must be registered.
  void addModule(Module &M);
  void setHostModule(Module &M);
  Module *hostModule() const { return Host; }

  /// Runs the initial full session (epoch 0). Call exactly once.
  MergeServiceStats initialize();

  /// An exclusive delta batch: holds the session lock from construction
  /// to destruction. Obtain via beginDelta(); apply() at most once.
  class DeltaBatch {
  public:
    DeltaBatch(const DeltaBatch &) = delete;
    DeltaBatch &operator=(const DeltaBatch &) = delete;
    ~DeltaBatch() = default;

    /// Prepares \p F for client editing: restores its thunk-free
    /// original body from the archive (a no-op-shaped rewrite when F
    /// was never merged) and records the checkout. Every checked-out
    /// function must appear in the applied delta's Changed list.
    Function *checkoutForEdit(Function *F);

    /// Applies the delta and runs the localized re-merge. Call at most
    /// once; consumes the batch (the session lock is released on
    /// return, so introspection works immediately afterwards).
    MergeServiceStats apply(const MergeDelta &Delta);

  private:
    friend class MergeService;
    explicit DeltaBatch(MergeService &S)
        : S(S), Lock(S.SessionMutex) {}
    MergeService &S;
    std::unique_lock<std::mutex> Lock;
    std::unordered_set<const Function *> CheckedOut;
    bool Applied = false;
  };

  /// Starts an exclusive delta batch (blocks while another batch or
  /// initialize() holds the session).
  DeltaBatch beginDelta() { return DeltaBatch(*this); }

  // --- Introspection (each takes the session lock; do not call while
  // --- holding an unapplied DeltaBatch) ------------------------------------
  unsigned epoch() const;
  unsigned fullRemerges() const; ///< cumulative degraded deltas
  bool isQuarantined(const Function *F) const;
  size_t quarantinedCount() const;
  /// The retained structural hash of a tracked function.
  StructuralHash structuralHash(const Function *F) const;
  MergeServiceStats lastStats() const;

private:
  /// Everything the session knows about one live original function.
  struct TrackedFunction {
    uint32_t Id = 0;       ///< planner CandidateIndex id
    uint32_t ModuleId = 0; ///< index into Modules
    Fingerprint FP;        ///< element-stable (node-based map)
    StructuralHash Hash;
    Function *Archived = nullptr; ///< thunk-free clone in the archive
    unsigned Baseline = 0;        ///< estimateFunctionSize of the original
  };

  /// Retained per merge-compatibility class: the journal/records/stats
  /// of its last pipeline run plus the exact pool filter that run used
  /// (the splice must replay against the pool *as of* that run).
  struct ClassState {
    std::vector<PipelineEntryTrace> Journal;
    MergeDriverStats Stats;
    std::unordered_set<const Function *> Members;
    std::vector<Function *> NewQuarantine; ///< per-run ladder sink
    std::unique_ptr<Module> Scratch;       ///< live only run -> splice
    MergeDriverOptions RunOptions;         ///< outlives the pipeline's ref
  };

  void registerFunction(Function *F, uint32_t ModuleId);
  void archiveFunction(Function *F, TrackedFunction &TF);
  void restoreOriginal(Function *F, const TrackedFunction &TF);
  /// Un-commits every retained merge of the given classes: restores
  /// archived originals (except functions in \p SkipRestore or
  /// \p Deleted), clears deleted bodies, erases the merged functions
  /// from the host in forward commit order, and drops the classes'
  /// journals/stats/members.
  void uncommitClasses(const std::set<Type *> &Dirty,
                       const std::unordered_set<const Function *> &SkipRestore,
                       const std::unordered_set<const Function *> &Deleted,
                       MergeServiceStats &Out);
  void eraseDeleted(const std::vector<Function *> &Deleted);
  /// Runs pipelines for the dirty classes, splices every class's journal
  /// into the host against the global plan, and fills Out.Session.
  void runEpoch(const std::set<Type *> &Dirty, MergeServiceStats &Out);
  void degradeToFullRemerge(const MergeDelta &Delta, MergeServiceStats &Out);
  MergeServiceStats applyDeltaLocked(const MergeDelta &Delta,
                                     const std::unordered_set<const Function *>
                                         &BatchCheckouts);

  MergeServiceOptions Options;
  std::vector<Module *> Modules;
  Module *Host = nullptr;
  bool ExplicitHost = false;
  bool Initialized = false;

  std::unordered_map<const Function *, TrackedFunction> Tracked;
  std::map<Function *, unsigned> Baselines; ///< pipeline-shaped view
  CandidateIndex Planner;
  uint32_t NextId = 0;
  std::map<Type *, ClassState> Classes;
  std::unique_ptr<Module> Archive;
  /// Struck-out functions -> the epoch the ladder retired them.
  std::map<const Function *, unsigned> QuarantinedAt;

  unsigned Epoch = 0;
  unsigned HostCounterBase = 0; ///< unique-name counter before any burn
  unsigned FullRemergeCount = 0;
  SymbolResolutionStats LastResolution;
  FaultInjectionConfig SessionFaults; ///< resolved at initialize()
  MergeServiceStats Last;

  mutable std::mutex SessionMutex;
};

} // namespace salssa

#endif // SALSSA_MERGE_MERGESERVICE_H
