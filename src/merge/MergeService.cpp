//===- merge/MergeService.cpp - Long-lived incremental merge sessions ---------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "merge/MergeService.h"
#include "codesize/SizeModel.h"
#include "ir/Instruction.h"
#include "ir/Module.h"
#include "merge/DecisionCache.h"
#include "merge/ShardedSessionRunner.h"
#include "support/Chrono.h"
#include "support/ThreadPool.h"
#include "transforms/Canonicalize.h"
#include "transforms/Cloning.h"
#include <algorithm>
#include <cassert>
#include <chrono>

using namespace salssa;

MergeService::MergeService(const MergeServiceOptions &Options)
    : Options(Options) {
  assert(Options.Driver.Technique == MergeTechnique::SalSSA &&
         "MergeService v1 supports the SalSSA technique only (FMSA's "
         "whole-pool demote/promote passes are not incremental)");
}

MergeService::~MergeService() = default;

void MergeService::addModule(Module &M) {
  assert(!Initialized && "modules must be registered before initialize()");
  assert(std::find(Modules.begin(), Modules.end(), &M) == Modules.end() &&
         "module registered twice");
  assert((Modules.empty() ||
          &M.getContext() == &Modules.front()->getContext()) &&
         "all registered modules must share one Context");
  Modules.push_back(&M);
  if (!Host)
    Host = &M;
}

void MergeService::setHostModule(Module &M) {
  assert(!Initialized && "host must be chosen before initialize()");
  assert(std::find(Modules.begin(), Modules.end(), &M) != Modules.end() &&
         "host must be a registered module");
  Host = &M;
  ExplicitHost = true;
}

// --- Per-function bookkeeping ------------------------------------------------

void MergeService::archiveFunction(Function *F, TrackedFunction &TF) {
  if (TF.Archived)
    Archive->eraseFunction(TF.Archived);
  // Identity value/callee maps: the clone keeps operand references into
  // the source module (globals, resolved callees), which is exactly what
  // a later restore must reproduce. The archive module is never
  // registered with any pipeline, printed, or interpreted.
  TF.Archived = cloneFunctionInto(F, *Archive, F->getName(), {}, {});
}

void MergeService::registerFunction(Function *F, uint32_t ModuleId) {
  TrackedFunction &TF = Tracked[F];
  TF.ModuleId = ModuleId;
  TF.FP = fingerprintFor(*F, Options.Driver.Canonicalize);
  TF.Hash = structuralHashFor(*F, Options.Driver.Canonicalize);
  TF.Baseline = estimateFunctionSize(*F, Options.Driver.Arch);
  TF.Id = NextId++;
  Planner.insert(TF.Id, TF.FP, ModuleId);
  Baselines[F] = TF.Baseline;
  archiveFunction(F, TF);
}

uint32_t MergeService::moduleIdOf(const Module *M) const {
  auto It = std::find(Modules.begin(), Modules.end(), M);
  assert(It != Modules.end() && "function outside the registered modules");
  return static_cast<uint32_t>(It - Modules.begin());
}

/// In-place counterpart of cloneFunctionInto: rebuilds \p F's body as
/// an exact copy of \p Src's while preserving F's Function identity
/// (journals, the planner and the archive are all keyed by Function*).
void MergeService::restoreBody(Function *F, const Function *Src) {
  assert(Src && !Src->isDeclaration() && "restore without an archived body");
  Context &Ctx = F->getParent()->getContext();
  F->clearBody();
  CloneMaps Maps;
  for (unsigned I = 0; I < Src->getNumArgs(); ++I) {
    Maps.Values[Src->getArg(I)] = F->getArg(I);
    F->getArg(I)->setName(Src->getArg(I)->getName());
  }
  for (const BasicBlock *BB : *Src)
    Maps.Blocks[BB] = F->createBlock(BB->getName());
  for (const BasicBlock *BB : *Src) {
    BasicBlock *NewBB = Maps.Blocks.at(BB);
    for (const Instruction *I : *BB) {
      Instruction *NewI = cloneInstruction(I, Ctx);
      NewI->setName(I->getName());
      NewBB->push_back(NewI);
      Maps.Values[I] = NewI;
    }
  }
  for (BasicBlock *BB : *F)
    for (Instruction *I : *BB)
      remapInstruction(I, Maps);
}

// --- Session lifecycle -------------------------------------------------------

MergeServiceStats MergeService::initialize() {
  std::lock_guard<std::mutex> Guard(SessionMutex);
  assert(!Modules.empty() && "initialize() with no registered modules");
  assert(!Initialized && "a service initializes exactly once");
  Initialized = true;

  Context &Ctx = Modules.front()->getContext();
  Archive = std::make_unique<Module>("merge.service.archive", Ctx);

  // Session prologue, mirroring CrossModuleMerger::run stage for stage:
  // resolution first, host policy second (Hottest counts resolved call
  // sites), then the full-session build (warm-path prologues +
  // registration + merge) shared with every later rebuild.
  LastResolution = resolveCalleesAcrossModules(Modules);
  if (!ExplicitHost)
    Host = selectHostModule(Modules, Options.Driver.Host,
                            Options.Driver.Arch);
  SessionFaults = Options.Driver.Faults.armed()
                      ? Options.Driver.Faults
                      : FaultInjectionConfig::fromEnv();

  MergeServiceStats Out;
  Out.Epoch = Epoch; // 0
  rebuildSession(Out);
  Last = Out;
  return Out;
}

Function *MergeService::DeltaBatch::checkoutForEdit(Function *F) {
  assert(!Applied && "checkout after apply()");
  // Always restore: for a never-merged function this rewrites the same
  // body (clone of the archive clone), for a thunked one it brings the
  // original back. Either way the client edits thunk-free code. A
  // cluster member (consumed by the HashClustering prologue, so not
  // tracked) restores from its own pristine archive clone.
  auto It = S.Tracked.find(F);
  if (It != S.Tracked.end()) {
    S.restoreBody(F, It->second.Archived);
  } else {
    auto MIt = S.ClusterMembers.find(F);
    assert(MIt != S.ClusterMembers.end() &&
           "checkout of an untracked function");
    S.restoreBody(F, MIt->second.Archived);
  }
  CheckedOut.insert(F);
  return F;
}

MergeServiceStats MergeService::DeltaBatch::apply(const MergeDelta &Delta) {
  assert(!Applied && "a batch applies exactly once");
  Applied = true;
  MergeServiceStats Out = S.applyDeltaLocked(Delta, CheckedOut);
  // The batch is consumed: hand the session back so introspection (and
  // the next beginDelta()) need not wait for this object's destructor.
  Lock.unlock();
  return Out;
}

MergeServiceStats MergeService::applyDeltaLocked(
    const MergeDelta &Delta,
    const std::unordered_set<const Function *> &BatchCheckouts) {
  assert(Initialized && "applyDelta before initialize()");
  ++Epoch;
  MergeServiceStats Out;
  Out.Epoch = Epoch;

  std::unordered_set<const Function *> ChangedSet(Delta.Changed.begin(),
                                                  Delta.Changed.end());
  std::unordered_set<const Function *> DeletedSet(Delta.Deleted.begin(),
                                                  Delta.Deleted.end());
#ifndef NDEBUG
  for (const Function *F : BatchCheckouts)
    assert((ChangedSet.count(F) || DeletedSet.count(F)) &&
           "every checked-out function must be declared Changed (or "
           "Deleted) in the applied delta");
  for (Function *F : Delta.Changed)
    assert((Tracked.count(F) || ClusterMembers.count(F)) &&
           "Changed entry is not tracked");
  for (Function *F : Delta.Deleted)
    assert((Tracked.count(F) || ClusterMembers.count(F)) &&
           "Deleted entry is not tracked");
  for (Function *F : Delta.Added) {
    assert(!Tracked.count(F) && !F->isDeclaration() &&
           "Added entry must be a fresh definition");
    assert(std::find(Modules.begin(), Modules.end(), F->getParent()) !=
               Modules.end() &&
           "Added entry must live in a registered module");
  }
#endif

  const bool Armed = SessionFaults.armed();
  try {
    // 1. Dirty set: classes of every touched function, plus the classes
    //    of quarantine-ledger entries whose strikes decay this epoch.
    std::set<Type *> Dirty;
    if (Options.QuarantineDecayEpochs) {
      for (auto It = QuarantinedAt.begin(); It != QuarantinedAt.end();) {
        if (Epoch - It->second >= Options.QuarantineDecayEpochs) {
          Dirty.insert(It->first->getReturnType());
          ++Out.QuarantineReleases;
          It = QuarantinedAt.erase(It);
        } else {
          ++It;
        }
      }
    }
    for (Function *F : Delta.Changed)
      Dirty.insert(F->getReturnType());
    for (Function *F : Delta.Deleted)
      Dirty.insert(F->getReturnType());
    for (Function *F : Delta.Added)
      Dirty.insert(F->getReturnType());
    Out.DirtyClasses = static_cast<unsigned>(Dirty.size());

    if (Options.Driver.HashClustering) {
      // The cluster prologue is whole-pool by nature: the smallest edit
      // can re-form, split or re-lead any group, so every delta rebuilds
      // the full session — restore the members, tear the whole merge
      // down, and re-run the cold clustered prologue over the new pool.
      if (Armed)
        maybeInjectFault(SessionFaults, FaultKind::SymbolResolution,
                         "epoch" + std::to_string(Epoch), "symres");
      restoreClusterMembersExcept(ChangedSet, DeletedSet);
      std::set<Type *> All;
      for (const auto &KV : Classes)
        All.insert(KV.first);
      uncommitClasses(All, ChangedSet, DeletedSet, Out);
      eraseDeleted(Delta.Deleted);
      eraseClusterBodies();
      LastResolution = resolveCalleesAcrossModules(Modules);
      Host->setUniqueNameCounter(PreClusterCounterBase);
      if (Options.ReelectHost && !ExplicitHost) {
        // The pool is live-pristine here, so the election is literally
        // the cold prologue's (post-resolution, pre-cluster).
        Module *Leader = selectHostModule(Modules, Options.Driver.Host,
                                          Options.Driver.Arch);
        if (Leader != Host) {
          Host = Leader;
          ++HostReelectionCount;
          Out.HostReelected = true;
        }
      }
      rebuildSession(Out);
      Out.ReclusteredFull = true;
      Last = Out;
      return Out;
    }

    // 2. Un-commit the dirty classes and drop the deleted functions.
    uncommitClasses(Dirty, ChangedSet, DeletedSet, Out);
    eraseDeleted(Delta.Deleted);

    // 3. Re-run linker-style resolution over the surviving + added
    //    functions. Canonical-per-name bindings are stable across
    //    re-runs (ir/SymbolResolution.h), so this matches what one cold
    //    resolution over the final pool would produce.
    if (Armed)
      maybeInjectFault(SessionFaults, FaultKind::SymbolResolution,
                       "epoch" + std::to_string(Epoch), "symres");
    LastResolution = resolveCalleesAcrossModules(Modules);

    // 4. Retire/re-insert planner entries and refresh the per-function
    //    state for every touched function.
    for (Function *F : Delta.Changed) {
      if (Armed) {
        maybeInjectFault(SessionFaults, FaultKind::Ranking, F->getName(),
                         "rank");
        maybeInjectFault(SessionFaults, FaultKind::Fingerprint,
                         F->getName(), "service");
      }
      TrackedFunction &TF = Tracked.at(F);
      assert(TF.FP.RetTy == F->getReturnType() &&
             "a changed function must keep its signature");
      StructuralHash NewHash =
          structuralHashFor(*F, Options.Driver.Canonicalize);
      if (NewHash == TF.Hash)
        ++Out.NoopChanges;
      Planner.retire(TF.Id);
      TF.FP = fingerprintFor(*F, Options.Driver.Canonicalize);
      TF.Hash = NewHash;
      TF.Baseline = estimateFunctionSize(*F, Options.Driver.Arch);
      TF.Id = NextId++;
      Planner.insert(TF.Id, TF.FP, TF.ModuleId);
      Baselines[F] = TF.Baseline;
      archiveFunction(F, TF);
    }
    for (Function *F : Delta.Added) {
      if (Armed) {
        maybeInjectFault(SessionFaults, FaultKind::Ranking, F->getName(),
                         "rank");
        maybeInjectFault(SessionFaults, FaultKind::Fingerprint,
                         F->getName(), "service");
      }
      auto MIt = std::find(Modules.begin(), Modules.end(), F->getParent());
      registerFunction(F,
                       static_cast<uint32_t>(MIt - Modules.begin()));
    }

    // 4.5. Host re-election: re-score the policy over the pristine
    //      archive (the refreshed bookkeeping above makes it current).
    //      A moved leader rebuilds the session wholesale on the new
    //      host — cold-with-that-host by construction.
    if (Options.ReelectHost && !ExplicitHost &&
        Options.Driver.Host != HostPolicy::First) {
      Module *Leader = electHostFromArchive();
      if (Leader != Host) {
        std::set<Type *> All;
        for (const auto &KV : Classes)
          All.insert(KV.first);
        uncommitClasses(All, ChangedSet, DeletedSet, Out);
        Host->setUniqueNameCounter(PreClusterCounterBase);
        Host = Leader;
        ++HostReelectionCount;
        Out.HostReelected = true;
        rebuildSession(Out);
        Last = Out;
        return Out;
      }
    }

    // 5. Localized re-merge + splice.
    runEpoch(Dirty, Out);
  } catch (const std::exception &) {
    degradeToFullRemerge(Delta, Out);
  }
  Last = Out;
  return Out;
}

// --- Un-commit ---------------------------------------------------------------

void MergeService::uncommitClasses(
    const std::set<Type *> &Dirty,
    const std::unordered_set<const Function *> &SkipRestore,
    const std::unordered_set<const Function *> &Deleted,
    MergeServiceStats &Out) {
  std::vector<Function *> MergedToErase;
  for (Type *T : Dirty) {
    auto CIt = Classes.find(T);
    if (CIt == Classes.end())
      continue;
    ClassState &CS = CIt->second;
    for (const PipelineEntryTrace &Trace : CS.Journal) {
      if (Trace.WinnerRecord < 0)
        continue;
      Function *Inputs[2] = {
          Trace.EntryFn,
          Trace.Partners[static_cast<size_t>(Trace.WinnerRecord)]};
      for (Function *F : Inputs) {
        auto TIt = Tracked.find(F);
        // Remerge inputs are merged functions (not tracked): they are
        // erased below, not restored. Edited/deleted originals keep the
        // bodies the client gave them.
        if (TIt == Tracked.end() || SkipRestore.count(F) ||
            Deleted.count(F))
          continue;
        restoreBody(F, TIt->second.Archived);
      }
      MergedToErase.push_back(Trace.Merged);
      ++Out.UncommittedMerges;
    }
    CS.Journal.clear();
    CS.Stats = MergeDriverStats();
    CS.Members.clear();
  }
  // Deleted functions may still be thunks into merged functions of their
  // (dirty) class; drop their bodies before the merged functions go.
  for (const Function *F : Deleted)
    if (Tracked.count(F))
      const_cast<Function *>(F)->clearBody();
  // Forward commit order: a remerged chain's earlier merged function is
  // a thunk into a later one, so callers are erased before callees.
  for (Function *M : MergedToErase)
    Host->eraseFunction(M);
}

void MergeService::eraseDeleted(const std::vector<Function *> &Deleted) {
  for (Function *F : Deleted) {
    auto TIt = Tracked.find(F);
    if (TIt == Tracked.end()) {
      // Cluster members are not tracked; drop their archive clone and
      // ledger entry directly.
      auto MIt = ClusterMembers.find(F);
      if (MIt == ClusterMembers.end())
        continue; // degrade path re-entry: already erased
      Archive->eraseFunction(MIt->second.Archived);
      ClusterMembers.erase(MIt);
      QuarantinedAt.erase(F);
      F->getParent()->eraseFunction(F);
      continue;
    }
    TrackedFunction &TF = TIt->second;
    Planner.retire(TF.Id);
    if (TF.Archived)
      Archive->eraseFunction(TF.Archived);
    Baselines.erase(F);
    QuarantinedAt.erase(F);
    Tracked.erase(TIt);
    F->getParent()->eraseFunction(F);
  }
}

// --- HashClustering session state --------------------------------------------

void MergeService::restoreClusterMembersExcept(
    const std::unordered_set<const Function *> &Skip,
    const std::unordered_set<const Function *> &Deleted) {
  for (const auto &KV : ClusterMembers) {
    Function *F = KV.first;
    if (Skip.count(F) || Deleted.count(F))
      continue; // client-edited body stays; deletions erase shortly
    restoreBody(F, KV.second.Archived);
  }
}

void MergeService::eraseClusterBodies() {
  // A cluster body may have merged further in the downstream pipeline,
  // in which case it is tracked like any pool function — retire that
  // bookkeeping alongside the body itself.
  for (Function *B : ClusterBodies) {
    auto TIt = Tracked.find(B);
    if (TIt != Tracked.end()) {
      Planner.retire(TIt->second.Id);
      if (TIt->second.Archived)
        Archive->eraseFunction(TIt->second.Archived);
      Baselines.erase(B);
      Tracked.erase(TIt);
    }
    QuarantinedAt.erase(B);
    Host->eraseFunction(B);
  }
  ClusterBodies.clear();
}

// --- Re-merge + splice -------------------------------------------------------

void MergeService::runEpoch(const std::set<Type *> &Dirty,
                            MergeServiceStats &Out) {
  auto T0 = std::chrono::steady_clock::now();

  // Fingerprint view over every tracked function (element pointers into
  // the node-based Tracked map are stable).
  std::unordered_map<const Function *, const Fingerprint *> FPView;
  FPView.reserve(Tracked.size());
  for (const auto &KV : Tracked)
    FPView.emplace(KV.first, &KV.second.FP);

  // Fresh pool filters for the dirty classes: every tracked function of
  // the class except active quarantine-ledger entries. Clean classes
  // keep the members their retained journal was recorded against.
  std::map<Type *, std::unordered_set<const Function *>> NewMembers;
  for (uint32_t MId = 0; MId < Modules.size(); ++MId)
    for (Function *F : Modules[MId]->functions()) {
      auto TIt = Tracked.find(F);
      if (TIt == Tracked.end())
        continue;
      Type *T = F->getReturnType();
      if (Dirty.count(T) && !QuarantinedAt.count(F))
        NewMembers[T].insert(F);
    }

  std::vector<ClassState *> Runs;
  unsigned RunIdx = 0;
  for (Type *T : Dirty) {
    ClassState &CS = Classes[T];
    assert(CS.Journal.empty() && "dirty class must be un-committed first");
    auto NMIt = NewMembers.find(T);
    CS.Members = NMIt == NewMembers.end()
                     ? std::unordered_set<const Function *>()
                     : std::move(NMIt->second);
    if (CS.Members.empty())
      continue; // class emptied out (all deleted/quarantined)
    CS.Scratch = std::make_unique<Module>(
        Host->getName() + ".svc" + std::to_string(Epoch) + "." +
            std::to_string(RunIdx++),
        Host->getContext());
    CS.RunOptions = Options.Driver;
    CS.RunOptions.ShardCount = 1;
    Runs.push_back(&CS);
  }

  // Schedule the dirty-class pipelines. ShardCount == 1 runs them
  // serially (inner pipelines keep the full thread budget); any other
  // value batches them over the pool, splitting the thread budget like
  // ShardedSessionRunner does per shard. Outcomes are identical either
  // way — classes are independent and each pipeline is thread-invariant.
  const unsigned NumThreads =
      ThreadPool::resolveThreadCount(Options.Driver.NumThreads);
  const bool Concurrent = Options.Driver.ShardCount != 1 &&
                          NumThreads > 1 && Runs.size() > 1;
  const unsigned Workers =
      Concurrent
          ? std::min(NumThreads, static_cast<unsigned>(Runs.size()))
          : 1;
  const unsigned InnerThreads =
      Concurrent ? std::max(1u, NumThreads / Workers) : NumThreads;
  auto RunClass = [&](ClassState &CS) {
    PipelineShardScope Scope;
    Scope.Materialize = CS.Scratch.get();
    Scope.PoolFilter = &CS.Members;
    Scope.Fingerprints = &FPView;
    Scope.Journal = &CS.Journal;
    Scope.Quarantined = &CS.NewQuarantine;
    if (EpochCache) {
      // Warm full-session builds only (rebuildSession): read-only cache
      // shared across the class pipelines, recordings drained after.
      CS.CacheUpdates.clear();
      Scope.Cache = EpochCache;
      Scope.CacheUpdates = &CS.CacheUpdates;
    }
    MergePipeline Pipeline(Modules, *Host, CS.RunOptions, Baselines,
                           CS.Stats, Scope);
    Pipeline.run();
  };
  if (!Concurrent) {
    for (ClassState *CS : Runs) {
      CS->RunOptions.NumThreads = InnerThreads;
      RunClass(*CS);
    }
  } else {
    for (ClassState *CS : Runs)
      CS->RunOptions.NumThreads = InnerThreads;
    ThreadPool Pool(Workers);
    for (ClassState *CS : Runs)
      Pool.submit([&RunClass, CS] { RunClass(*CS); });
    Pool.wait();
  }

  // Quarantine intake + this-epoch work accounting (dirty runs only).
  for (ClassState *CS : Runs) {
    for (Function *F : CS->NewQuarantine)
      QuarantinedAt[F] = Epoch;
    CS->NewQuarantine.clear();
    Out.EpochPairingDistanceCalls += CS->Stats.PairingDistanceCalls;
    Out.EpochPairingProbes += CS->Stats.PairingProbes;
    Out.EpochAttempts += CS->Stats.Attempts;
  }

  // --- Splice ---------------------------------------------------------------
  // Replay the cold session's pool walk over *all* classes — dirty ones
  // from the runs above, clean ones from their retained journals — with
  // the host's name counter reset to the pre-merge base, so names,
  // record order and FunctionOrder reconstruct the from-scratch run
  // (the ShardedSessionRunner splice, classes as shards).
  struct PlanEntry {
    Function *F;
    const Fingerprint *FP;
  };
  std::vector<PlanEntry> Plan;
  for (Module *M : Modules)
    for (Function *F : M->functions()) {
      auto TIt = Tracked.find(F);
      if (TIt == Tracked.end())
        continue;
      auto CIt = Classes.find(F->getReturnType());
      if (CIt == Classes.end() || !CIt->second.Members.count(F))
        continue;
      Plan.push_back(PlanEntry{F, &TIt->second.FP});
    }
  std::stable_sort(Plan.begin(), Plan.end(),
                   [](const PlanEntry &A, const PlanEntry &B) {
                     return A.FP->Size > B.FP->Size;
                   });

  // Take every committed merged function out of its current parent
  // (scratch for fresh runs, host for clean classes) so re-adoption
  // rebuilds the host's FunctionOrder in replay order.
  std::map<Function *, std::unique_ptr<Function>> Taken;
  for (auto &KV : Classes)
    for (const PipelineEntryTrace &Trace : KV.second.Journal)
      if (Trace.WinnerRecord >= 0)
        Taken[Trace.Merged] =
            Trace.Merged->getParent()->takeFunction(Trace.Merged);

  Host->setUniqueNameCounter(HostCounterBase);
  struct Cursor {
    size_t J = 0;
    size_t R = 0;
  };
  std::map<Type *, Cursor> Cursors;
  std::vector<Type *> Queue;
  Queue.reserve(Plan.size());
  for (const PlanEntry &E : Plan)
    Queue.push_back(E.FP->RetTy);

  CrossModuleStats &Session = Out.Session;
  for (size_t Q = 0; Q < Queue.size(); ++Q) {
    ClassState &CS = Classes.at(Queue[Q]);
    Cursor &Cur = Cursors[Queue[Q]];
    assert(Cur.J < CS.Journal.size() &&
           "class journal exhausted before the replayed walk");
    const PipelineEntryTrace &Trace = CS.Journal[Cur.J++];
    for (size_t R = 0; R < Trace.Partners.size(); ++R) {
      MergeRecord Rec = CS.Stats.Records[Cur.R + R];
      Rec.Name1 = Trace.EntryFn->getName();
      Rec.Name2 = Trace.Partners[R]->getName();
      std::string Burned;
      if (attemptBurnedName(Rec.Stats.Outcome))
        Burned = Host->makeUniqueName(Rec.Name1 + ".m");
      if (static_cast<int32_t>(R) == Trace.WinnerRecord)
        Host->adoptFunction(std::move(Taken.at(Trace.Merged)), Burned);
      Session.Driver.Records.push_back(std::move(Rec));
    }
    Cur.R += Trace.Partners.size();
    if (Trace.WinnerRecord >= 0 && Options.Driver.AllowRemerge)
      Queue.push_back(Queue[Q]);
  }

  // Scratch hosts must be fully drained; the clean classes' cursors must
  // land exactly at their journal ends.
  for (ClassState *CS : Runs) {
    assert(CS->Scratch->functions().empty() &&
           "splice left a merged function behind in a scratch host");
    CS->Scratch.reset();
  }
#ifndef NDEBUG
  for (const auto &KV : Classes) {
    auto CurIt = Cursors.find(KV.first);
    size_t J = CurIt == Cursors.end() ? 0 : CurIt->second.J;
    assert(J == KV.second.Journal.size() &&
           "splice must consume every class journal entry");
  }
#endif

  // --- Session (cold-equivalent) stats --------------------------------------
  Session.NumModules = static_cast<unsigned>(Modules.size());
  Session.CanonicalSymbols = LastResolution.CanonicalSymbols;
  Session.RetargetedCalls = LastResolution.RetargetedCalls;
  unsigned LiveClasses = 0;
  for (const CandidateIndex::PartitionSummary &C :
       Planner.partitionSummaries()) {
    if (C.Live)
      ++LiveClasses;
    auto CIt = Classes.find(C.RetTy);
    if (CIt == Classes.end())
      continue;
    const MergeDriverStats &S = CIt->second.Stats;
    Session.Driver.Attempts += S.Attempts;
    Session.Driver.ProfitableMerges += S.ProfitableMerges;
    Session.Driver.CommittedMerges += S.CommittedMerges;
    Session.Driver.CrossModuleMerges += S.CrossModuleMerges;
    Session.Driver.AlignmentSeconds += S.AlignmentSeconds;
    Session.Driver.CodeGenSeconds += S.CodeGenSeconds;
    Session.Driver.RankingSeconds += S.RankingSeconds;
    Session.Driver.SpeculativeAttempts += S.SpeculativeAttempts;
    Session.Driver.SpeculativeDiscarded += S.SpeculativeDiscarded;
    Session.Driver.InlineReattempts += S.InlineReattempts;
    Session.Driver.CommitConflicts += S.CommitConflicts;
    Session.Driver.SpeculationsSkipped += S.SpeculationsSkipped;
    Session.Driver.AttemptFailures += S.AttemptFailures;
    Session.Driver.BudgetRejects += S.BudgetRejects;
    Session.Driver.VerifierRejects += S.VerifierRejects;
    Session.Driver.QuarantinedFunctions += S.QuarantinedFunctions;
    Session.Driver.SpeculativeFailures += S.SpeculativeFailures;
    Session.Driver.TaskFailures += S.TaskFailures;
    Session.Driver.PairingDistanceCalls += S.PairingDistanceCalls;
    Session.Driver.PairingProbes += S.PairingProbes;
    // Cache counters are serial-commit-stage counts, summed like the
    // cold sharded session does. A retained clean class keeps the
    // counts of the (possibly cache-backed) run its journal came from.
    Session.Driver.CacheHits += S.CacheHits;
    Session.Driver.CacheMisses += S.CacheMisses;
    Session.Driver.CacheSkips += S.CacheSkips;
    Session.Driver.PeakAlignmentBytes =
        std::max(Session.Driver.PeakAlignmentBytes, S.PeakAlignmentBytes);
    Session.Driver.AdaptiveThresholdMax =
        std::max(Session.Driver.AdaptiveThresholdMax,
                 S.AdaptiveThresholdMax);
    Session.Driver.AdaptiveThresholdFinal =
        std::max(Session.Driver.AdaptiveThresholdFinal,
                 S.AdaptiveThresholdFinal);
  }
  Out.TotalClasses = LiveClasses;
  Session.Driver.NumThreadsUsed = std::max(1u, NumThreads);
  Session.Driver.ShardCount = std::max(1u, LiveClasses);
  // Session-level warm-path counters: set by assignment, exactly like
  // the cold sessions set them once per run (never summed from class
  // pipelines). Between full builds they report the session's current
  // prologue state.
  Session.Driver.CacheLoadRejected = SessionCacheLoadRejected;
  Session.Driver.HashClusterCommits = SessionClusterCommits;
  Session.Driver.FingerprintFaults = SessionClusterFaults;
  // SizeBefore is the cold run's exactly: estimateModuleSize sums
  // definitions, and the pool's unmerged definitions are precisely the
  // tracked originals at their archived (baseline) sizes. Under
  // HashClustering the pool swaps the (synthetic) cluster bodies in for
  // the consumed members; undo that swap — the pristine pool is the
  // members at their archived sizes, with no bodies.
  for (const auto &KV : Baselines)
    Session.SizeBefore += KV.second;
  for (Function *B : ClusterBodies)
    Session.SizeBefore -= Baselines.at(B);
  for (const auto &KV : ClusterMembers)
    Session.SizeBefore += KV.second.Baseline;
  for (Module *M : Modules)
    Session.SizeAfter += estimateModuleSize(*M, Options.Driver.Arch);
  Session.CrossModuleMerges = Session.Driver.CrossModuleMerges;
  Session.IntraModuleMerges =
      Session.Driver.CommittedMerges - Session.Driver.CrossModuleMerges;
  Session.Driver.TotalSeconds = secondsSince(T0);
}

// --- Full-session (re)build --------------------------------------------------

void MergeService::rebuildSession(MergeServiceStats &Out) {
  // Teardown of the registration state. Caller contract (see header):
  // every original body is live and pristine in its registered module,
  // resolution has re-run, Host is chosen with its unique-name counter
  // sitting at the pre-burn base.
  Planner = CandidateIndex();
  NextId = 0;
  Tracked.clear();
  Baselines.clear();
  ClusterMembers.clear();
  ClusterBodies.clear();
  {
    std::vector<Function *> Archived;
    for (Function *F : Archive->functions())
      Archived.push_back(F);
    for (Function *F : Archived)
      Archive->eraseFunction(F);
  }

  const FaultInjectionConfig *FaultsPtr =
      SessionFaults.armed() ? &SessionFaults : nullptr;

  // Structural-hash fast path first, exactly like the cold sessions:
  // cluster name burns precede every splice burn.
  PreClusterCounterBase = Host->uniqueNameCounter();
  SessionClusterCommits = 0;
  SessionClusterFaults = 0;
  if (Options.Driver.HashClustering) {
    // Pristine clones must exist before clustering rewrites the member
    // bodies into thunks. Survivors re-archive through registerFunction
    // below, so their pre-clones are dropped again.
    std::map<Function *, unsigned> PreBase;
    std::map<Function *, Function *> PreClones;
    for (Module *M : Modules)
      for (Function *F : M->functions())
        if (!F->isDeclaration()) {
          PreBase[F] = estimateFunctionSize(*F, Options.Driver.Arch);
          if (F->isMergeable())
            PreClones[F] =
                cloneFunctionInto(F, *Archive, F->getName(), {}, {});
        }
    PreClusterStats PCS;
    std::vector<PreClusterGroup> Groups;
    PCS.Groups = &Groups;
    preClusterIdenticalFunctions(Modules, *Host, Options.Driver.Arch,
                                 PreBase, FaultsPtr, PCS);
    SessionClusterCommits = PCS.ClusterCommits;
    SessionClusterFaults = PCS.FingerprintFaults;
    for (const PreClusterGroup &G : Groups) {
      ClusterBodies.push_back(G.Merged);
      for (Function *M : G.Members) {
        auto PIt = PreClones.find(M);
        assert(PIt != PreClones.end() && "cluster member without pre-clone");
        ClusterMembers[M] = ClusterMember{
            PIt->second, moduleIdOf(M->getParent()), PreBase.at(M)};
        PreClones.erase(PIt);
      }
    }
    for (const auto &KV : PreClones)
      Archive->eraseFunction(KV.second);
  }

  // One shared decision cache for every class pipeline of this build:
  // loaded (and self-invalidated) once, read-only while pipelines run,
  // appended to from their serial-commit recordings, persisted after.
  DecisionCache Cache;
  uint64_t CacheFP = 0;
  const bool UseCache = !Options.Driver.DecisionCachePath.empty();
  SessionCacheLoadRejected = 0;
  if (UseCache) {
    CacheFP = DecisionCache::optionsFingerprint(Options.Driver);
    if (Cache.load(Options.Driver.DecisionCachePath, CacheFP, FaultsPtr) ==
        DecisionCache::LoadOutcome::Rejected)
      ++SessionCacheLoadRejected;
    EpochCache = &Cache;
  }

  // Register the pool: every definition that is not a consumed cluster
  // member (committed cluster bodies are pool functions and may merge
  // further — the cold plan's include-set exactly). The quarantine
  // ledger survives a rebuild; strikes decay on their own schedule.
  std::set<Type *> Dirty;
  for (uint32_t MId = 0; MId < Modules.size(); ++MId)
    for (Function *F : Modules[MId]->functions())
      if (!F->isDeclaration() && !ClusterMembers.count(F)) {
        registerFunction(F, MId);
        Dirty.insert(F->getReturnType());
      }
  // Every committed-merge name burn replays from this base on every
  // epoch's splice; the registered modules' own counters never move.
  HostCounterBase = Host->uniqueNameCounter();

  runEpoch(Dirty, Out);
  EpochCache = nullptr;
  Out.DirtyClasses = Out.TotalClasses;

  if (UseCache) {
    // Class recordings applied in class order (keys are disjoint across
    // classes) and serialized sorted by key, so the file bytes are
    // identical at every thread count.
    for (Type *T : Dirty) {
      auto CIt = Classes.find(T);
      if (CIt != Classes.end())
        Cache.apply(std::move(CIt->second.CacheUpdates));
    }
    Cache.save(Options.Driver.DecisionCachePath, CacheFP, FaultsPtr);
  }
}

Module *MergeService::electHostFromArchive() const {
  assert(ClusterBodies.empty() &&
         "archive election is for the incremental path only (clustering "
         "deltas elect over the restored live pool)");
  if (Options.Driver.Host == HostPolicy::First || Modules.size() == 1)
    return Modules.front();
  std::vector<uint64_t> Score(Modules.size(), 0);
  if (Options.Driver.Host == HostPolicy::Biggest) {
    // estimateModuleSize over the pristine pool == the tracked archived
    // baselines grouped by registered module.
    for (const auto &KV : Tracked)
      Score[KV.second.ModuleId] += KV.second.Baseline;
  } else { // HostPolicy::Hottest
    // The archived bodies are the resolved pristine pool: their callee
    // operands still point at the live canonical definitions, so the
    // in-degree lands on the definition's registered module, exactly as
    // selectHostModule counts it on a cold run.
    std::unordered_map<const Module *, size_t> Rank;
    for (size_t I = 0; I < Modules.size(); ++I)
      Rank[Modules[I]] = I;
    for (const auto &KV : Tracked)
      for (BasicBlock *BB : *KV.second.Archived)
        for (Instruction *I : *BB) {
          auto *CB = dyn_cast<CallBase>(I);
          if (!CB || !CB->getCallee() || CB->getCallee()->isDeclaration())
            continue;
          auto It = Rank.find(CB->getCallee()->getParent());
          if (It != Rank.end())
            ++Score[It->second];
        }
  }
  size_t BestIdx = 0;
  for (size_t I = 1; I < Modules.size(); ++I)
    if (Score[I] > Score[BestIdx])
      BestIdx = I;
  return Modules[BestIdx];
}

// --- Degraded path -----------------------------------------------------------

void MergeService::degradeToFullRemerge(const MergeDelta &Delta,
                                        MergeServiceStats &Out) {
  // A service-level fault (ranking / fingerprinting / symbol resolution)
  // interrupted delta planning at an arbitrary point. Recovery re-does
  // the whole epoch's bookkeeping idempotently — with the service-level
  // fault points disarmed, so a deterministic fault cannot re-degrade —
  // and rebuilds the whole session: the cost of a cold run, never a
  // corrupt session. Pipeline-level faults stay armed inside the
  // pipelines; prologue faults (fingerprint, cache I/O) are contained
  // by construction and cannot re-degrade either.
  ++FullRemergeCount;
  Out.DegradedToFullRemerge = true;
  EpochCache = nullptr; // a fault may have unwound mid-build

  // 1. Un-commit everything (classes already un-committed have empty
  //    journals; restore skips client-edited and deleted bodies).
  std::unordered_set<const Function *> ChangedSet(Delta.Changed.begin(),
                                                  Delta.Changed.end());
  std::unordered_set<const Function *> DeletedSet(Delta.Deleted.begin(),
                                                  Delta.Deleted.end());
  restoreClusterMembersExcept(ChangedSet, DeletedSet);
  std::set<Type *> AllClasses;
  for (const auto &KV : Classes)
    AllClasses.insert(KV.first);
  uncommitClasses(AllClasses, ChangedSet, DeletedSet, Out);
  eraseDeleted(Delta.Deleted);
  eraseClusterBodies();

  // 2. Cold re-prologue over the surviving pool (every definition left
  //    in the registered modules is a pristine pool function — thunks
  //    were restored and merged/cluster bodies erased above). No host
  //    re-election on the degrade path: recovery restores service, it
  //    does not re-plan placement.
  LastResolution = resolveCalleesAcrossModules(Modules);
  Host->setUniqueNameCounter(PreClusterCounterBase);
  rebuildSession(Out);
}

// --- Introspection -----------------------------------------------------------

unsigned MergeService::epoch() const {
  std::lock_guard<std::mutex> Guard(SessionMutex);
  return Epoch;
}

unsigned MergeService::fullRemerges() const {
  std::lock_guard<std::mutex> Guard(SessionMutex);
  return FullRemergeCount;
}

unsigned MergeService::hostReelections() const {
  std::lock_guard<std::mutex> Guard(SessionMutex);
  return HostReelectionCount;
}

bool MergeService::isQuarantined(const Function *F) const {
  std::lock_guard<std::mutex> Guard(SessionMutex);
  return QuarantinedAt.count(F) != 0;
}

size_t MergeService::quarantinedCount() const {
  std::lock_guard<std::mutex> Guard(SessionMutex);
  return QuarantinedAt.size();
}

StructuralHash MergeService::structuralHash(const Function *F) const {
  std::lock_guard<std::mutex> Guard(SessionMutex);
  auto It = Tracked.find(F);
  return It == Tracked.end() ? StructuralHash() : It->second.Hash;
}

MergeServiceStats MergeService::lastStats() const {
  std::lock_guard<std::mutex> Guard(SessionMutex);
  return Last;
}
