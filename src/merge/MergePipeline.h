//===- merge/MergePipeline.h - Staged, shardable merge driver -----------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The staged module-level merge driver. What used to be one monolithic
/// loop in MergeDriver.cpp is split into three explicit stages:
///
///   rank    - candidate pool + CandidateIndex maintenance; produces the
///             top-t candidate list for one pool entry (cheap, serial);
///   attempt - linearization, alignment and speculative code generation
///             for one (entry, candidate) pair (the expensive part;
///             side-effect free with respect to the real module when
///             given a staging module, hence parallelizable);
///   commit  - profit selection, thunking, pool retire/insert (serial:
///             the only stage that mutates the real module and the pool).
///
/// With MergeDriverOptions::NumThreads == 1 the stages run inline per
/// pool entry, reproducing the legacy serial driver bit for bit (same
/// attempts, same records, same merged-function names, same module).
///
/// With NumThreads > 1 the pipeline runs *optimistic rounds* in the
/// spirit of "Optimistic Global Function Merger" (Lee et al.): the rank
/// stage snapshots the top-t lists for a window of live pool entries,
/// the attempt stage runs every snapshot attempt on a worker pool (each
/// worker building speculative functions in its own staging module), and
/// the serial commit stage walks the window in pool order re-validating
/// each entry's ranking against the *current* pool. A speculative
/// attempt is reused only when its candidate still appears in the
/// re-validated list — its inputs are then provably untouched — and any
/// candidate the snapshot missed (consumed inputs, fresh remerge
/// functions) is re-attempted inline. Commits therefore happen in
/// exactly the serial order with exactly the serial outcomes: every
/// thread count produces identical merges, records, names, and final
/// modules, and stale speculation only costs wasted worker time.
/// Unique-name allocation is replayed at commit time so that even the
/// name counters advance exactly as in the serial driver.
///
/// The pipeline is module-set-agnostic: it runs over a list of registered
/// modules with one designated *host* module (CrossModuleMerger drives
/// that mode; see its header for the session semantics). Pool entries
/// carry their module id, the CandidateIndex ranks all modules' live
/// candidates in one structure, attempts pair functions across module
/// boundaries exactly like intra-module pairs, and every merged function
/// — speculative or inline — is generated into (or adopted by) the host
/// module, with thunks committed in the inputs' own modules. With a
/// single registered module every code path degenerates to the
/// single-module driver bit for bit, and the determinism contract above
/// holds unchanged for any module count at any thread count.
///
/// The profit-guided selection modes keep their calibration (ProfitModel
/// EMA) and adaptive exploration state *per merge-compatibility class*
/// (return type), which makes Profit/Adaptive outcomes invariant across
/// shard counts too — a class never sees another class's signal, no
/// matter how the session was partitioned. And when a PipelineShardScope
/// attaches a warm DecisionCache, the serial commit stage replays cached
/// entry decisions — skipping ranking and alignment while burning the
/// exact unique-name sequence of the cold run — with a per-entry
/// fallback to the live path (see merge/DecisionCache.h).
///
/// Failure containment (see "Failure containment & fault injection" in
/// src/merge/README.md): every attempt runs behind an attempt guard that
/// converts exceptions and blown AttemptBudget caps into skipped pairs;
/// an always-on commit firewall verifies each would-be winner with
/// ir/Verifier before it can replace Best, rolling rejects back and
/// falling through to the next candidate; and a quarantine ladder
/// retires functions whose attempts keep failing. None of it changes a
/// healthy run: with no armed faults and no caps the pipeline's output
/// is bit-identical to the pre-containment driver, and a faulted run
/// stays deterministic per (config, seed) at every thread/shard count
/// because fault decisions are keyed by function names, not by
/// scheduling (support/FaultInjection.h).
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_MERGE_MERGEPIPELINE_H
#define SALSSA_MERGE_MERGEPIPELINE_H

#include "merge/CandidateIndex.h"
#include "merge/DecisionCache.h"
#include "merge/MergeDriver.h"
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>

namespace salssa {

class Module;

/// Journal record of one commitEntry invocation, appended in serial pool
/// order (exactly one per pool entry, empty for entries that produced no
/// attempts). ShardedSessionRunner replays these journals to splice
/// per-shard results back into the host module with the exact attempt
/// order, record order and unique-name sequence of an unsharded run:
/// names are re-derived from the Function pointers at splice time (by
/// then every earlier merged function already carries its final host
/// name), so shard-local staging names never leak into the result.
struct PipelineEntryTrace {
  /// The pool entry's function (null for entries consumed before their
  /// turn — they emit nothing and burn nothing).
  Function *EntryFn = nullptr;
  /// One partner per record this entry emitted, in attempt order.
  std::vector<Function *> Partners;
  /// Offset of the committed attempt within Partners, -1 when the entry
  /// committed nothing.
  int32_t WinnerRecord = -1;
  /// The committed merged function (in the Materialize module), null
  /// when WinnerRecord is -1.
  Function *Merged = nullptr;
};

/// Narrowing scope for one shard of a sharded session (see
/// ShardedSessionRunner.h). All three fields are optional; a
/// default-constructed scope reproduces the plain cross-module pipeline.
struct PipelineShardScope {
  /// Module that receives every generated merged function instead of the
  /// host (a shard-local scratch host). The pipeline's *logical* host —
  /// remerge module ids, cross-module accounting, same-module
  /// tie-breaking — stays the real host; only materialization (function
  /// creation, unique-name burning, adoption) is redirected. Must not be
  /// one of the registered modules and must share their Context.
  Module *Materialize = nullptr;
  /// When set, only functions in this set enter the candidate pool. The
  /// caller guarantees the set is merge-closed (no function outside it
  /// can ever rank against one inside — per-return-type partitions have
  /// this property; see ShardedSessionRunner.h).
  const std::unordered_set<const Function *> *PoolFilter = nullptr;
  /// Optional precomputed fingerprints covering (at least) every
  /// function in PoolFilter, captured at the same lifecycle point
  /// buildPool would compute them (post FMSA demotion, pre merging).
  /// Saves the sharded runner's planning pass from being recomputed
  /// once more per shard. Pointees must outlive the pipeline.
  const std::unordered_map<const Function *, const Fingerprint *>
      *Fingerprints = nullptr;
  /// When set, one PipelineEntryTrace is appended per pool entry in
  /// serial pool order.
  std::vector<PipelineEntryTrace> *Journal = nullptr;
  /// Read-only warm decision cache (merge/DecisionCache.h). When set,
  /// every pool entry gets a (StructuralHash, occurrence) key and the
  /// serial commit stage replays cached decisions instead of ranking —
  /// falling back to the live path per entry whenever a recorded partner
  /// no longer resolves.
  const DecisionCache *Cache = nullptr;
  /// When set, the serial commit stage records each *clean* live entry
  /// (every attempt completed, no verifier reject) as a pending cache
  /// update. The owning session applies and persists them after the run;
  /// pipelines never write the cache directly.
  std::vector<DecisionCacheUpdate> *CacheUpdates = nullptr;
  /// When set, every function the quarantine ladder retires during this
  /// run is appended (in the serial commit order the strikes landed).
  /// A long-lived session (merge/MergeService.h) uses this to move
  /// struck-out functions into its decay ledger so they can re-enter
  /// candidacy after QuarantineDecayEpochs.
  std::vector<Function *> *Quarantined = nullptr;
};

/// One run of the staged merge driver over a module. Constructed with the
/// pool's profitability baselines (captured before any preprocessing),
/// then driven once via run(). Aggregates into the caller's
/// MergeDriverStats; see MergeDriverStats for the threading semantics of
/// the timing fields.
class MergePipeline {
public:
  /// Single-module run over \p M (the classic driver).
  MergePipeline(Module &M, const MergeDriverOptions &Options,
                const std::map<Function *, unsigned> &BaselineSize,
                MergeDriverStats &Stats);
  /// Cross-module run over \p Modules. All modules must share one
  /// Context; \p Host (which must be a member of \p Modules) receives
  /// every merged function. \p BaselineSize must cover every definition
  /// of every module. Registration order is part of the determinism
  /// contract: it fixes pool order among equal-sized functions.
  MergePipeline(const std::vector<Module *> &Modules, Module &Host,
                const MergeDriverOptions &Options,
                const std::map<Function *, unsigned> &BaselineSize,
                MergeDriverStats &Stats);
  /// Sharded variant: like the cross-module constructor, additionally
  /// narrowed by \p Scope (see PipelineShardScope). ShardedSessionRunner
  /// is the only intended caller.
  MergePipeline(const std::vector<Module *> &Modules, Module &Host,
                const MergeDriverOptions &Options,
                const std::map<Function *, unsigned> &BaselineSize,
                MergeDriverStats &Stats, const PipelineShardScope &Scope);
  ~MergePipeline();

  MergePipeline(const MergePipeline &) = delete;
  MergePipeline &operator=(const MergePipeline &) = delete;

  /// Runs rank/attempt/commit to quiescence (every live pool entry
  /// processed, including remerge insertions).
  void run();

private:
  struct PoolEntry {
    Function *F = nullptr;
    Fingerprint FP;
    unsigned CostSize = 0;  ///< profitability baseline (pre-demotion size)
    uint32_t ModuleId = 0;  ///< index into Modules (0 when single-module)
    bool Consumed = false;
    /// True for merged functions re-offered to the pool. Their bodies
    /// carry fid-dispatch overhead (selects, label selection, phis) the
    /// ProfitModel's original-function calibration does not fit, so the
    /// profit-guided modes keep plain distance ordering for them.
    bool IsRemerge = false;
    /// Failed attempts this function took part in (either side of the
    /// pair). At Options.QuarantineThreshold strikes the entry is
    /// quarantined: retired from the pool/index unmerged, counted in
    /// Stats.QuarantinedFunctions. Only ever advanced at the serial
    /// commit stage, so the ladder is thread-count-deterministic.
    unsigned Failures = 0;
    /// Decision-cache address (assigned only when a cache or an update
    /// sink is attached): canonical body hash plus occurrence index
    /// among equal hashes in serial pool order (see DecisionCache.h).
    StructuralHash Hash;
    uint32_t HashOcc = 0;
  };

  /// Snapshot work unit for one pool entry in an optimistic round.
  struct AttemptTask {
    uint32_t PoolIdx = 0;
    std::vector<CandidateIndex::Hit> Hits; ///< snapshot top-t ranking
    std::vector<MergeAttempt> Attempts;    ///< parallel results, 1:1 with Hits
    /// False when the profit-guided modes predicted this entry's attempt
    /// would stale (its top candidate was already claimed by an earlier
    /// entry in the window): workers leave it alone and the commit stage
    /// runs it inline, exactly like the serial path.
    bool Speculate = true;
  };

  /// Per-worker accumulators, merged into Stats in worker order at join
  /// (satisfying determinism of the aggregation structure — no shared
  /// clock, no cross-thread increments).
  struct WorkerState {
    std::unique_ptr<Module> Staging; ///< owns this worker's speculative fns
    unsigned AttemptsRun = 0;
    unsigned FailuresRun = 0;     ///< attempt-guard catches on this worker
    unsigned TaskFailuresRun = 0; ///< whole tasks recovered on this worker
    double AlignmentSeconds = 0;
    double CodeGenSeconds = 0;
  };

  // --- rank stage -----------------------------------------------------------
  void buildPool();
  /// Top-t live candidates for pool entry \p I under the configured
  /// ranking strategy and selection mode (instrumented into
  /// Stats.RankingSeconds). Under SelectionStrategy::Profit/Adaptive the
  /// distance slate is widened with the bounded extension, annotated
  /// with ProfitModel estimates and re-ranked by (bucketed profit,
  /// same-module, distance, id) before truncation to t. rank() itself
  /// never advances selection state (model EMA, adaptive t) — only the
  /// serial commit stage does — so parallel snapshot calls and the
  /// authoritative commit-stage re-rank share this one entry point.
  std::vector<CandidateIndex::Hit> rank(size_t I);
  /// The exploration threshold an entry of return-type class \p RetTy
  /// will use: the configured t, or the class's adaptively driven one
  /// under SelectionStrategy::Adaptive.
  unsigned effectiveThreshold(Type *RetTy) const;
  /// Re-orders \p Hits by (estimated profit desc, same-module-as-entry,
  /// distance asc, id asc) and truncates to \p T.
  void profitRerank(std::vector<CandidateIndex::Hit> &Hits,
                    uint32_t SelfModule, unsigned T) const;

  // --- commit stage ---------------------------------------------------------
  /// Processes pool entry \p I to completion: re-ranks against the
  /// current pool, reuses matching speculative attempts from \p Spec
  /// (null in the serial path), runs any missing attempt inline, commits
  /// the most profitable one. Exactly replays the serial driver's
  /// attempt order, record order and name allocation.
  void commitEntry(size_t I, AttemptTask *Spec);
  /// Discards every speculative attempt of \p Spec not consumed yet.
  void discardRemaining(AttemptTask &Spec);
  /// Guarded attempt: attemptMerge behind the attempt guard. Every
  /// exception (injected or real) is converted into an invalid attempt
  /// with AttemptOutcome::Faulted — the session never dies on one pair.
  /// \p Failures, when non-null, receives guard catches (the workers'
  /// parallel-only counter; the serial commit path counts
  /// authoritatively from record outcomes instead).
  MergeAttempt guardedAttempt(Function &F1, Function &F2, unsigned SizeF1,
                              unsigned SizeF2, Module *Target,
                              unsigned *Failures,
                              const AlignmentReplay *Replay = nullptr);

  // --- decision cache -------------------------------------------------------
  /// Assigns pool entry \p I its (hash, occurrence) cache key and
  /// registers it in the key-to-pool map. Called for every entry at
  /// buildPool time and for every remerge insertion, in serial pool
  /// order — which is what makes occurrence indices stable across
  /// thread and shard counts.
  void assignCacheKey(size_t I);
  /// Serial-commit-stage cache replay for entry \p I. Returns true when
  /// a cached decision was found and every recorded partner resolved to
  /// a live pool entry: the whole entry was then replayed (skipped
  /// records + name burns for non-winners, codegen with the recorded
  /// alignment for the winner, votes and model observations as
  /// recorded) and committed/journaled exactly like the live path.
  /// Returns false — entry untouched — on any mismatch; the caller runs
  /// the live path and counts a CacheMiss.
  bool replayFromCache(size_t I, AttemptTask *Spec);

  // --- failure containment --------------------------------------------------
  /// One strike for each side of a failed attempt (fault, budget or
  /// verifier reject). The partner is quarantined the moment it strikes
  /// out; the entry itself is judged by its commitEntry (gate +
  /// epilogue). Serial-commit-stage only.
  void noteAttemptFailure(size_t EntryIdx, uint32_t PartnerId);
  /// Retires pool entry \p I unmerged iff quarantine is enabled and the
  /// entry has struck out. Returns true when the entry is (now) gone.
  bool quarantineIfStruckOut(size_t I);

  // --- orchestration --------------------------------------------------------
  void runSerial();
  void runParallel(unsigned NumThreads);

  std::vector<Module *> Modules;
  Module &Host; ///< the logical host; a member of Modules
  /// Where merged functions are actually generated/adopted and unique
  /// names burned: &Host normally, the shard scratch host under a
  /// PipelineShardScope (ShardedSessionRunner re-burns the real host's
  /// names at splice time).
  Module *Materialize = nullptr;
  const std::unordered_set<const Function *> *PoolFilter = nullptr;
  const std::unordered_map<const Function *, const Fingerprint *>
      *PrecomputedFPs = nullptr;
  std::vector<PipelineEntryTrace> *Journal = nullptr;
  uint32_t HostId = 0; ///< Host's index in Modules (remerge entries' id)
  const MergeDriverOptions &Options;
  const std::map<Function *, unsigned> &BaselineSize;
  MergeDriverStats &Stats;
  MergeCodeGenOptions CGOpts;

  // --- failure-containment configuration ------------------------------------
  // Resolved once at construction. Both pointers stay null on a healthy
  // run (no caps, no armed faults), keeping attemptMerge on its exact
  // pre-containment path — the zero-fault bit-identity invariant.
  FaultInjectionConfig Faults; ///< Options.Faults, else SALSSA_FAULTS env
  const FaultInjectionConfig *FaultsPtr = nullptr; ///< &Faults iff armed
  const AttemptBudget *Budget = nullptr; ///< &Options.Budget iff any cap

  std::vector<PoolEntry> Pool;
  CandidateIndex Index;
  bool UseIndex = false;

  // --- profit-guided selection state ----------------------------------------
  // Everything below only ever advances inside commitEntry (the serial
  // commit stage), in pool order — which is what keeps the Profit and
  // Adaptive modes deterministic at every thread count.
  //
  // The state is *per merge-compatibility class* (keyed by the pool
  // entries' return type): functions only ever rank, calibrate against
  // and vote with members of their own class, and within a class the
  // serial pool order is the same in every shard plan — so per-class
  // calibration makes the Profit and Adaptive modes shard-count-
  // invariant, where a single global EMA/threshold would entangle
  // classes that sharding separates. A single-class pool degenerates to
  // the old global state bit for bit.
  struct ClassSelectionState {
    ProfitModel Profit;        ///< calibrated online from this class's records
    unsigned CurrentT = 1;     ///< adaptive exploration threshold
    unsigned RoundEntries = 0; ///< entries since the last t adjustment
    unsigned WidenVotes = 0;   ///< deep wins (profit found at the slate tail)
    unsigned ShrinkVotes = 0;  ///< top-1 wins / dry entries
  };
  /// Lazily created per return-type class; lookup only (never iterated
  /// in an outcome-relevant order — Type pointers are not stable across
  /// runs).
  std::map<Type *, ClassSelectionState> Classes;
  /// Finds-or-creates the class state for \p RetTy (seeded from
  /// SeedProfit / BaseT).
  ClassSelectionState &classState(Type *RetTy);
  /// Applies one entry's adaptive vote to its class and closes the
  /// round when AdaptRoundSize entries have voted. Shared by the live
  /// commit path and cache replay (which replays recorded votes so the
  /// threshold trajectory — hence every live-ranked entry — matches the
  /// cold run).
  void tallyVote(ClassSelectionState &CS, bool Shrink, bool Widen);
  /// Max CurrentT across classes (BaseT when none exists) — the value
  /// Stats.AdaptiveThresholdFinal reports.
  unsigned maxThreshold() const;
  ProfitModel SeedProfit;   ///< ProfitModel::forArch seed for new classes
  unsigned BaseT = 1;       ///< == Options.ExplorationThreshold
  unsigned MaxT = 1;        ///< adaptation ceiling (BaseT + AdaptiveRange)

  // --- decision cache -------------------------------------------------------
  const DecisionCache *Cache = nullptr; ///< warm decisions (read-only)
  std::vector<DecisionCacheUpdate> *CacheUpdates = nullptr; ///< recordings
  /// Optional sink for functions the quarantine ladder retires (see
  /// PipelineShardScope::Quarantined).
  std::vector<Function *> *QuarantineSink = nullptr;
  /// Live pool entries by cache key (maintained alongside the pool;
  /// consumed entries stay mapped and are rejected at resolve time).
  std::map<DecisionKey, uint32_t> KeyToPool;
  /// Next occurrence index per structural hash, in serial pool order.
  std::map<StructuralHash, uint32_t> HashOccCounter;
  /// Adaptation geometry: how far t may rise above the configured base,
  /// how wide the distance slate is queried relative to t, and how many
  /// committed entries form one adaptation round.
  static constexpr unsigned AdaptiveRange = 4;
  static constexpr unsigned AdaptRoundSize = 8;
  /// Resolution at which profit scores are compared during re-ranking:
  /// scores in the same ScoreBucketBytes-wide bucket count as equal and
  /// the finer signals (same-module preference, then distance) break
  /// the tie. This is what keeps the model from evicting a
  /// near-by-distance candidate over an estimate gap smaller than its
  /// own error bars — and what gives the same-module preference real
  /// traction (it decides whole buckets, not exact-to-the-byte ties).
  static constexpr int64_t ScoreBucketBytes = 64;
  /// How many bounded-extension candidates (CandidateIndex::query
  /// ExtraK) widen the profit slate beyond the exact top-t. The
  /// extension reuses the top-t walk's bound, so it is nearly free.
  static constexpr unsigned SlateExtra = 2;
};

} // namespace salssa

#endif // SALSSA_MERGE_MERGEPIPELINE_H
