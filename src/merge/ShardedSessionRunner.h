//===- merge/ShardedSessionRunner.h - Sharded whole-program sessions ----------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sharded execution of a whole-program merging session. A cross-module
/// pool decomposes into *merge-compatibility classes*: the driver ranks
/// candidates by fingerprint distance, pairs with different return types
/// rank at +inf and never survive, and a merged function keeps its
/// inputs' return type — so the per-return-type partitions of the pool
/// are provably independent, including every remerge generation. That is
/// exactly the decomposition "Optimistic Global Function Merger" (Lee et
/// al., 2023) exploits to make whole-program merging tractable, and this
/// runner turns it into parallelism:
///
///   partition  the pool's classes are discovered through the
///              CandidateIndex's partition summaries (return type key;
///              size/cost aggregates; coarse-histogram bucket) and packed
///              onto ShardCount shards by greedy
///              longest-processing-time assignment under an
///              alignment-cost weight (Σ size² per class — attempt cost
///              is quadratic in function size). Equal-weight classes are
///              ordered by a seed mixing the class's first-appearance
///              rank with its fingerprint coarse bucket, so ties spread
///              deterministically. The resulting balance is reported as
///              MergeDriverStats::ShardImbalance.
///
///   run        each shard is an independent serial MergePipeline over
///              its classes' functions only (PipelineShardScope pool
///              filter), generating merged functions into a shard-local
///              scratch host module. Shards execute concurrently on the
///              existing support/ThreadPool: they touch disjoint
///              functions, the shared Context interns under a lock, and
///              constants/globals are use-untracked (see ir/README.md),
///              so even the commit stages are race-free across shards.
///
///   splice     results re-enter the real host serially, in the exact
///              order the *unsharded* session would have produced them.
///              The runner replays the unsharded pool walk (the global
///              size-descending order plus remerge appends, reconstructed
///              from each shard's PipelineEntryTrace journal), burns the
///              host's unique-name counter once per attempt record — the
///              same burn the unsharded pipeline performs — and adopts
///              each winning merged function out of its scratch host
///              under the replayed name. Record names are re-derived from
///              Function pointers at splice time, after every earlier
///              winner already carries its final name.
///
/// Contract: in *every* selection mode the sharded session commits a
/// bit-identical merge set to the unsharded CrossModuleMerger session —
/// same merges, same records, same names, byte-identical module prints —
/// at every shard count x thread count (tests/sharded_session_test.cpp
/// pins shard counts {1,2,4,8} x thread counts {1,4}). Distance gets
/// this from the partition independence above; the profit-guided modes
/// get it from per-class calibration: the pipeline keeps its ProfitModel
/// and adaptive-threshold state per merge-compatibility class
/// (MergePipeline.h), and a class's serial observation sequence is the
/// same whether its pipeline runs unsharded or inside any shard plan.
/// This shard-invariance is also what lets one DecisionCachePath warm
/// sessions at any shard count.
///
/// Host selection: like CrossModuleMerger, an explicit setHostModule
/// wins; otherwise MergeDriverOptions::Host picks the module (First /
/// Biggest / Hottest — see HostPolicy and selectHostModule).
///
/// Ownership: the runner borrows the registered modules (own them with a
/// ModuleGroup); its scratch hosts are internal and are destroyed —
/// provably empty — before run() returns.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_MERGE_SHARDEDSESSIONRUNNER_H
#define SALSSA_MERGE_SHARDEDSESSIONRUNNER_H

#include "merge/CrossModuleMerger.h"

namespace salssa {

/// One sharded whole-program session: register modules, optionally pick
/// a host, run once. Mirrors the CrossModuleMerger lifecycle; the stats
/// additionally carry Driver.ShardCount / Driver.ShardImbalance.
class ShardedSessionRunner {
public:
  explicit ShardedSessionRunner(const MergeDriverOptions &Options);

  /// Registers \p M (same rules as CrossModuleMerger::addModule:
  /// shared Context, fixed registration order = deterministic state).
  void addModule(Module &M);

  /// Pins \p M (already registered) as the host, overriding
  /// MergeDriverOptions::Host.
  void setHostModule(Module &M);

  /// The explicit host, or — after run() — the policy-resolved one.
  Module *hostModule() const { return Host; }
  size_t numModules() const { return Modules.size(); }

  /// Runs the session to quiescence. Call exactly once.
  CrossModuleStats run();

private:
  MergeDriverOptions Options;
  std::vector<Module *> Modules;
  Module *Host = nullptr;
  bool Ran = false;
};

/// Resolves \p Policy over \p Modules (registration order): the module
/// every merged function will materialize in. Biggest measures
/// estimateModuleSize under \p Arch; Hottest counts call sites across
/// the whole set whose callee is *defined* in the candidate module —
/// both sessions call this AFTER cross-module symbol resolution, so
/// calls that reached a definition through a per-TU extern declaration
/// count toward the definition's module. All ties resolve to the
/// earlier-registered module. Returns null for an empty set.
Module *selectHostModule(const std::vector<Module *> &Modules,
                         HostPolicy Policy, TargetArch Arch);

} // namespace salssa

#endif // SALSSA_MERGE_SHARDEDSESSIONRUNNER_H
