//===- merge/Fingerprint.h - Candidate ranking -------------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fingerprint-based ranking mechanism shared by FMSA and SalSSA
/// (§5.1): each function is summarized as an opcode-frequency vector, and
/// candidate pairs are ranked by Manhattan distance. The exploration
/// threshold t bounds how many top-ranked candidates each function tries
/// before giving up, trading code-size reduction for compile time.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_MERGE_FINGERPRINT_H
#define SALSSA_MERGE_FINGERPRINT_H

#include "ir/Function.h"
#include <array>
#include <cstdint>

namespace salssa {

/// Opcode-frequency summary of a function.
struct Fingerprint {
  static constexpr size_t NumBuckets =
      static_cast<size_t>(InstLastKind) + 1;
  std::array<uint32_t, NumBuckets> OpcodeCount{};
  uint32_t Size = 0;     ///< instruction count
  Type *RetTy = nullptr; ///< merging requires equal return types

  static Fingerprint compute(const Function &F);
};

/// Manhattan distance between opcode vectors; lower = more similar.
/// Pairs with different return types are unmergeable and rank at +inf.
uint64_t fingerprintDistance(const Fingerprint &A, const Fingerprint &B);

} // namespace salssa

#endif // SALSSA_MERGE_FINGERPRINT_H
