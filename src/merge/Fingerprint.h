//===- merge/Fingerprint.h - Candidate ranking -------------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fingerprint-based ranking mechanism shared by FMSA and SalSSA
/// (§5.1): each function is summarized as an opcode-frequency vector, and
/// candidate pairs are ranked by Manhattan distance. The exploration
/// threshold t bounds how many top-ranked candidates each function tries
/// before giving up, trading code-size reduction for compile time.
///
/// On top of the paper's histogram, each fingerprint carries a compact
/// MinHash sketch over opcode shingles (consecutive opcode bigrams plus
/// unigrams, in linearization order). The sketch is banded LSH-style:
/// two functions that share a band hash are likely to be Jaccard-similar
/// in their opcode n-gram sets. CandidateIndex uses band collisions to
/// seed its search with good candidates early; exactness of the final
/// ranking never depends on the sketch (see CandidateIndex.h).
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_MERGE_FINGERPRINT_H
#define SALSSA_MERGE_FINGERPRINT_H

#include "ir/Function.h"
#include <array>
#include <cstdint>

namespace salssa {

/// Opcode-frequency summary of a function plus a MinHash similarity
/// sketch, both computed in a single pass over the body.
struct Fingerprint {
  static constexpr size_t NumBuckets =
      static_cast<size_t>(InstLastKind) + 1;

  /// Sketch geometry: SketchHashes independent MinHash values, grouped
  /// into SketchBands bands of SketchRows rows for LSH banding. With
  /// 16 hashes in 8 bands of 2, functions with opcode-shingle Jaccard
  /// similarity s collide in at least one band with probability
  /// 1 - (1 - s^2)^8 — ~0.99 at s = 0.7, ~0.07 at s = 0.1.
  static constexpr size_t SketchHashes = 16;
  static constexpr size_t SketchBands = 8;
  static constexpr size_t SketchRows = SketchHashes / SketchBands;

  /// Coarse histogram: sums of 8-bucket groups of OpcodeCount. The
  /// group-wise L1 distance is sandwiched between the size gap and the
  /// full Manhattan distance (triangle inequality both ways), giving
  /// CandidateIndex a 6-element prefilter before the 41-element scan.
  static constexpr size_t NumGroups = (NumBuckets + 7) / 8;

  std::array<uint32_t, NumBuckets> OpcodeCount{};
  std::array<uint32_t, NumGroups> GroupSum{};
  std::array<uint64_t, SketchHashes> MinHash{}; ///< see compute()
  uint32_t Size = 0;     ///< instruction count
  Type *RetTy = nullptr; ///< merging requires equal return types

  static Fingerprint compute(const Function &F);

  /// Hash of band \p Band's rows, used as an LSH bucket key. \p Band must
  /// be < SketchBands.
  uint64_t bandHash(size_t Band) const;
};

/// Manhattan distance between opcode vectors; lower = more similar.
/// Pairs with different return types are unmergeable and rank at +inf
/// (UINT64_MAX).
///
/// \p Bound enables early exit: once the partial sum exceeds \p Bound the
/// scan stops and the partial sum (a lower bound on the true distance,
/// and strictly greater than \p Bound) is returned. Callers doing top-k
/// selection pass their current k-th best distance so hopeless
/// candidates cost only a few buckets. The result is exact whenever it
/// is <= Bound.
uint64_t fingerprintDistance(const Fingerprint &A, const Fingerprint &B,
                             uint64_t Bound = UINT64_MAX);

/// Group-wise L1 distance over GroupSum: a lower bound on
/// fingerprintDistance that costs NumGroups (6) operations instead of
/// NumBuckets (41). Does NOT check return types.
uint64_t fingerprintDistanceLowerBound(const Fingerprint &A,
                                       const Fingerprint &B);

} // namespace salssa

#endif // SALSSA_MERGE_FINGERPRINT_H
