//===- merge/StructuralHash.h - Canonical function-body hashing ---------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact structural hashing of function bodies, and the pre-clustering
/// fast path built on it (per *Optimistic Global Function Merger*):
/// hash-identical functions merge with zero alignment work — one body,
/// k direct thunks — before pairwise ranking ever runs.
///
/// The hash is *canonical*: two functions that differ only in value,
/// block or function names, or that live in different modules of the
/// same Context, hash equal whenever their instruction streams are
/// structurally identical. Every position-dependent reference
/// (instruction results, blocks, arguments) is encoded by a dense
/// traversal index, never by name or address; types are encoded by
/// structure (kind + width, recursing through function types), never by
/// interned pointer — which also makes the hash stable *across
/// processes*, the property the cross-run DecisionCache keys on.
///
/// Hash equality is a 128-bit filter, not a proof: clustering confirms
/// every group member against its leader with structurallyEqual, a
/// lockstep walk that is strict where the hash is lenient (globals and
/// callees must be pointer-identical, so a member referencing a
/// same-named but distinct global falls back to the ordinary pairwise
/// pipeline, which handles mismatched operands by construction).
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_MERGE_STRUCTURALHASH_H
#define SALSSA_MERGE_STRUCTURALHASH_H

#include "codesize/SizeModel.h"
#include <cstdint>
#include <map>
#include <unordered_set>
#include <vector>

namespace salssa {

class Function;
class Module;
struct FaultInjectionConfig;

/// 128-bit canonical hash of a function body (see file comment). Value
/// semantics; totally ordered so it can key std::map and be serialized.
struct StructuralHash {
  uint64_t Hi = 0;
  uint64_t Lo = 0;

  bool operator==(const StructuralHash &O) const {
    return Hi == O.Hi && Lo == O.Lo;
  }
  bool operator!=(const StructuralHash &O) const { return !(*this == O); }
  bool operator<(const StructuralHash &O) const {
    return Hi != O.Hi ? Hi < O.Hi : Lo < O.Lo;
  }
};

/// Computes the canonical structural hash of \p F (a definition).
StructuralHash computeStructuralHash(const Function &F);

/// Exact structural equality: same signature type, same block/instruction
/// stream, operands equivalent under the canonical index maps. Types,
/// constants, globals and callees compare by pointer (both functions must
/// share one Context; interning makes pointer equality value equality for
/// types and Context-owned constants).
bool structurallyEqual(const Function &F1, const Function &F2);

/// One committed cluster: the merged body landed in the host plus the
/// members whose bodies became direct thunks onto it. A long-lived
/// session (merge/MergeService.h) keeps these to know which functions a
/// later delta must restore from its archive before re-clustering.
struct PreClusterGroup {
  Function *Merged;               ///< the committed body (lives in Host)
  std::vector<Function *> Members; ///< now direct thunks, in group order
};

/// Counters reported by preClusterIdenticalFunctions.
struct PreClusterStats {
  uint64_t ClusterCommits = 0;    ///< groups committed (one merged body each)
  uint64_t FingerprintFaults = 0; ///< functions skipped by a fired
                                  ///< FaultKind::Fingerprint point
  /// When non-null, one entry is appended per committed group, in
  /// commit order.
  std::vector<PreClusterGroup> *Groups = nullptr;
};

/// The pre-ranking fast path: hashes every mergeable function of
/// \p Modules (module registration order × creation order), groups
/// hash-identical ones, confirms each group with structurallyEqual, and
/// commits every confirmed, profitable group as one merged body in
/// \p Host — a verbatim clone of the group leader, firewalled through
/// ir/Verifier — with each member's body replaced by a direct thunk
/// (no fid dispatch: all members are identical, so the merged body needs
/// no disambiguation). Profitability gate: (k-1)·size(leader) must
/// exceed k·thunkBytes under \p Arch's size model.
///
/// Returns the pool include-set for the downstream pipeline: every
/// mergeable function that was *not* consumed by a cluster, plus the
/// freshly committed merged bodies (which may merge further). Committed
/// bodies are entered into \p BaselineSize at their post-commit size,
/// exactly like the pipeline's own remerge insertions.
///
/// \p Faults, when non-null and armed, arms FaultKind::Fingerprint per
/// function (keyed by name): a fired point skips that function's
/// clustering — it stays in the returned pool untouched — and counts in
/// PreClusterStats::FingerprintFaults. A fully faulted pre-cluster pass
/// degrades to the ordinary pipeline, never to a wrong merge.
///
/// Serial and deterministic: group order is first-seen order, name
/// burning uses Host's unique-name counter exactly once per committed
/// group. Sessions run this once, before any sharding, so the result is
/// identical at every thread and shard count.
std::unordered_set<const Function *> preClusterIdenticalFunctions(
    const std::vector<Module *> &Modules, Module &Host, TargetArch Arch,
    std::map<Function *, unsigned> &BaselineSize,
    const FaultInjectionConfig *Faults, PreClusterStats &Out);

} // namespace salssa

#endif // SALSSA_MERGE_STRUCTURALHASH_H
