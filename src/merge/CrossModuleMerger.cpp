//===- merge/CrossModuleMerger.cpp - Whole-program merge session ---------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "merge/CrossModuleMerger.h"
#include "codesize/SizeModel.h"
#include "ir/Module.h"
#include "ir/SymbolResolution.h"
#include "merge/DecisionCache.h"
#include "merge/MergePipeline.h"
#include "merge/ShardedSessionRunner.h"
#include "merge/StructuralHash.h"
#include "support/Chrono.h"
#include "transforms/Mem2Reg.h"
#include "transforms/Reg2Mem.h"
#include "transforms/Simplify.h"
#include <algorithm>
#include <cassert>
#include <chrono>
#include <map>
#include <unordered_set>
#include <utility>

using namespace salssa;

CrossModuleMerger::CrossModuleMerger(const MergeDriverOptions &Options)
    : Options(Options) {}

void CrossModuleMerger::addModule(Module &M) {
  assert(!Ran && "modules must be registered before run()");
  assert(std::find(Modules.begin(), Modules.end(), &M) == Modules.end() &&
         "module registered twice");
  assert((Modules.empty() ||
          &M.getContext() == &Modules.front()->getContext()) &&
         "all registered modules must share one Context");
  Modules.push_back(&M);
  if (!Host)
    Host = &M;
}

void CrossModuleMerger::setHostModule(Module &M) {
  assert(!Ran && "host must be chosen before run()");
  assert(std::find(Modules.begin(), Modules.end(), &M) != Modules.end() &&
         "host must be a registered module");
  Host = &M;
  ExplicitHost = true;
}

CrossModuleStats CrossModuleMerger::run() {
  assert(!Modules.empty() && "run() with no registered modules");
  assert(!Ran && "a session runs exactly once");
  Ran = true;

  // Sharded execution of this very session: same modules, same host
  // rules, split by merge-compatibility class (ShardedSessionRunner.h).
  if (Options.ShardCount != 1) {
    ShardedSessionRunner Sharded(Options);
    for (Module *M : Modules)
      Sharded.addModule(*M);
    if (ExplicitHost)
      Sharded.setHostModule(*Host);
    CrossModuleStats S = Sharded.run();
    Host = Sharded.hostModule();
    return S;
  }

  CrossModuleStats Stats;
  Stats.NumModules = static_cast<unsigned>(Modules.size());
  auto T0 = std::chrono::steady_clock::now();
  const bool IsFMSA = Options.Technique == MergeTechnique::FMSA;
  Context &Ctx = Modules.front()->getContext();

  for (Module *M : Modules)
    Stats.SizeBefore += estimateModuleSize(*M, Options.Arch);

  // Link-step symbol resolution first: bind same-named external
  // declarations to one canonical function per symbol, so calls into
  // common libraries align across modules (see ir/SymbolResolution.h —
  // without this, split clone families stop matching at every call
  // site). A no-op when only one module is registered, preserving the
  // N=1 bit-for-bit contract.
  SymbolResolutionStats Resolution = resolveCalleesAcrossModules(Modules);
  Stats.CanonicalSymbols = Resolution.CanonicalSymbols;
  Stats.RetargetedCalls = Resolution.RetargetedCalls;

  // Host policy resolves after symbol resolution so HostPolicy::Hottest
  // counts cross-TU call sites against their canonical definitions'
  // module (see selectHostModule).
  if (!ExplicitHost)
    Host = selectHostModule(Modules, Options.Host, Options.Arch);

  // Mirror runFunctionMerging stage for stage, just over the whole module
  // set — this parallelism of structure is what makes the N=1 session
  // bit-identical to the single-module driver.

  // Snapshot profitability baselines before any preprocessing.
  std::map<Function *, unsigned> BaselineSize;
  for (Module *M : Modules)
    for (Function *F : M->functions())
      if (!F->isDeclaration())
        BaselineSize[F] = estimateFunctionSize(*F, Options.Arch);

  // FMSA preprocessing: demote every definition, in every module.
  if (IsFMSA)
    for (Module *M : Modules)
      for (Function *F : M->functions())
        if (!F->isDeclaration())
          demoteRegistersToMemory(*F, Ctx);

  // Session-level fault resolution, mirroring the pipeline's own: the
  // pre-cluster pass and the cache I/O sit outside any pipeline, so they
  // resolve the SALSSA_FAULTS fallback themselves.
  FaultInjectionConfig SessionFaults = Options.Faults.armed()
                                           ? Options.Faults
                                           : FaultInjectionConfig::fromEnv();
  const FaultInjectionConfig *SessionFaultsPtr =
      SessionFaults.armed() ? &SessionFaults : nullptr;

  PipelineShardScope Scope;

  // Structural-hash fast path: commit exact-clone groups as one body +
  // direct thunks before pairwise ranking, and hand the pipeline the
  // surviving pool as its include-set (thunked members are gone, the
  // cluster bodies may merge further).
  std::unordered_set<const Function *> ClusterPool;
  if (Options.HashClustering) {
    PreClusterStats PCS;
    ClusterPool = preClusterIdenticalFunctions(Modules, *Host, Options.Arch,
                                               BaselineSize, SessionFaultsPtr,
                                               PCS);
    Scope.PoolFilter = &ClusterPool;
    Stats.Driver.HashClusterCommits = PCS.ClusterCommits;
    Stats.Driver.FingerprintFaults = PCS.FingerprintFaults;
  }

  // Persistent decision cache: load (self-invalidating on damage or an
  // options/version mismatch), expose read-only to the pipeline, collect
  // its serial-commit-stage recordings, persist after the run.
  DecisionCache Cache;
  std::vector<DecisionCacheUpdate> CacheUpdates;
  const bool UseCache = !Options.DecisionCachePath.empty();
  uint64_t OptionsFP = 0;
  if (UseCache) {
    OptionsFP = DecisionCache::optionsFingerprint(Options);
    if (Cache.load(Options.DecisionCachePath, OptionsFP, SessionFaultsPtr) ==
        DecisionCache::LoadOutcome::Rejected)
      ++Stats.Driver.CacheLoadRejected;
    Scope.Cache = &Cache;
    Scope.CacheUpdates = &CacheUpdates;
  }

  {
    MergePipeline Pipeline(Modules, *Host, Options, BaselineSize,
                           Stats.Driver, Scope);
    Pipeline.run();
  }

  if (UseCache) {
    Cache.apply(std::move(CacheUpdates));
    // A failed write (I/O error or injected CacheIO fault) means "no
    // cache for the next run", never a failed session.
    Cache.save(Options.DecisionCachePath, OptionsFP, SessionFaultsPtr);
  }

  // FMSA post-pass, in every module.
  if (IsFMSA)
    for (Module *M : Modules)
      for (Function *F : M->functions()) {
        if (F->isDeclaration())
          continue;
        promoteAllocasToRegisters(*F, Ctx);
        simplifyFunction(*F, Ctx);
      }

  for (Module *M : Modules)
    Stats.SizeAfter += estimateModuleSize(*M, Options.Arch);
  Stats.CrossModuleMerges = Stats.Driver.CrossModuleMerges;
  Stats.IntraModuleMerges =
      Stats.Driver.CommittedMerges - Stats.Driver.CrossModuleMerges;
  Stats.Driver.TotalSeconds = secondsSince(T0);
  return Stats;
}
