//===- merge/SSARepair.h - Dominance repair + phi-node coalescing -------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Restores the SSA dominance property of freshly generated merged code
/// (§4.3 of the paper) and implements phi-node coalescing (§4.4).
///
/// Mechanism: every definition that fails to dominate one of its uses is
/// demoted to a stack slot (store after the definition, loads at the
/// uses), then the slots are promoted back with the standard SSA
/// construction algorithm (Mem2Reg). Reads on paths that bypass the
/// definition see the slot's undef initial value — precisely the paper's
/// "pseudo-definition at the entry block initialized with an undefined
/// value".
///
/// Phi-node coalescing assigns one shared slot to a pair of *disjoint*
/// definitions (one exclusive to each input function, same type), chosen
/// to maximize the overlap of their user-block sets UB(d1) ∩ UB(d2). After
/// promotion the pair collapses into a single phi web, and selects whose
/// two arms were the pair's values fold away (Fig 14/15).
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_MERGE_SSAREPAIR_H
#define SALSSA_MERGE_SSAREPAIR_H

#include <map>

namespace salssa {

class Context;
class Function;
class Instruction;

/// Which input function a merged-function instruction originates from.
/// Shared covers merged pairs and generator-synthesized code.
enum class MergeOrigin : unsigned char { Shared, FromF1, FromF2 };

/// Statistics from one repair run.
struct SSARepairStats {
  unsigned ViolatingDefs = 0;
  unsigned SlotsCreated = 0;
  unsigned CoalescedPairs = 0;
  unsigned PhisInserted = 0;
};

/// Repairs all dominance violations in \p Merged. \p Origin classifies
/// instructions by provenance (instructions absent from the map are
/// treated as Shared). When \p EnableCoalescing is set, disjoint
/// definition pairs share slots per the paper's heuristic.
SSARepairStats repairSSA(Function &Merged, Context &Ctx,
                         const std::map<Instruction *, MergeOrigin> &Origin,
                         bool EnableCoalescing);

} // namespace salssa

#endif // SALSSA_MERGE_SSAREPAIR_H
