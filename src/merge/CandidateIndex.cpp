//===- merge/CandidateIndex.cpp - Near-linear candidate ranking ----------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "merge/CandidateIndex.h"
#include "merge/FunctionMerger.h"
#include <algorithm>
#include <cassert>

using namespace salssa;

namespace {

/// Cap on entries examined per LSH band bucket during seeding. Seeding
/// only tightens the search bound, so capping it never affects result
/// exactness — it just bounds worst-case probe cost on degenerate pools
/// (e.g. hundreds of identical clones sharing one bucket). A band
/// collision is already a strong near-duplicate signal, so a handful of
/// probes per band reaches a near-final bound.
constexpr size_t MaxSeedProbesPerBand = 12;

/// True if hit \p A ranks strictly before \p B: nearer first, ties
/// broken by lower id — the brute-force stable-sort order.
bool ranksBefore(const CandidateIndex::Hit &A, const CandidateIndex::Hit &B) {
  return A.Distance < B.Distance ||
         (A.Distance == B.Distance && A.Id < B.Id);
}

} // namespace

CandidateIndex::Partition &CandidateIndex::partitionFor(Type *RetTy) {
  auto Inserted = Partitions.try_emplace(RetTy);
  if (Inserted.second)
    PartitionOrder.push_back(RetTy); // first-insertion order, never erased
  return Inserted.first->second;
}

const CandidateIndex::Partition *
CandidateIndex::partitionFor(Type *RetTy) const {
  auto It = Partitions.find(RetTy);
  return It == Partitions.end() ? nullptr : &It->second;
}

void CandidateIndex::insert(uint32_t Id, const Fingerprint &FP,
                            uint32_t ModuleId) {
  if (Id >= Entries.size())
    Entries.resize(Id + 1);
  Entry &E = Entries[Id];
  assert(!E.Live && "id already live in the index");
  E.FP = FP;
  E.ModuleId = ModuleId;
  E.Live = true;
  Partition &P = partitionFor(FP.RetTy);
  if (FP.Size >= P.SizeBuckets.size())
    P.SizeBuckets.resize(FP.Size + 1);
  P.SizeBuckets[FP.Size].push_back(Id);
  P.MinSize = std::min(P.MinSize, FP.Size);
  P.MaxSize = std::max(P.MaxSize, FP.Size);
  ++P.NumLive;
  P.SizeSum += FP.Size;
  P.CostSum += uint64_t(FP.Size) * uint64_t(FP.Size);
  for (size_t G = 0; G < Fingerprint::NumGroups; ++G)
    P.GroupAgg[G] += FP.GroupSum[G];
  for (size_t B = 0; B < Fingerprint::SketchBands; ++B)
    P.Bands[FP.bandHash(B)].push_back(Id);
  ++NumLive;
}

namespace {

/// Removes one occurrence of \p Id by swap-and-pop. Bucket order is
/// irrelevant to query exactness (the top-k is defined by (distance,
/// id), and seeding order only affects how fast the bound tightens), so
/// there is no reason to pay the order-preserving erase — which made
/// retiring n clones out of one shared bucket O(n²) on degenerate
/// pools.
void swapAndPop(std::vector<uint32_t> &Bucket, uint32_t Id) {
  auto Pos = std::find(Bucket.begin(), Bucket.end(), Id);
  if (Pos != Bucket.end()) {
    *Pos = Bucket.back();
    Bucket.pop_back();
  }
}

} // namespace

void CandidateIndex::retire(uint32_t Id) {
  assert(Id < Entries.size() && Entries[Id].Live &&
         "retiring an id that is not live");
  Entry &E = Entries[Id];
  Partition &P = partitionFor(E.FP.RetTy);
  swapAndPop(P.SizeBuckets[E.FP.Size], Id);
  --P.NumLive;
  P.SizeSum -= E.FP.Size;
  P.CostSum -= uint64_t(E.FP.Size) * uint64_t(E.FP.Size);
  for (size_t G = 0; G < Fingerprint::NumGroups; ++G)
    P.GroupAgg[G] -= E.FP.GroupSum[G];
  for (size_t B = 0; B < Fingerprint::SketchBands; ++B) {
    auto BucketIt = P.Bands.find(E.FP.bandHash(B));
    if (BucketIt == P.Bands.end())
      continue;
    swapAndPop(BucketIt->second, Id);
    if (BucketIt->second.empty())
      P.Bands.erase(BucketIt);
  }
  E.Live = false;
  --NumLive;
}

std::vector<CandidateIndex::PartitionSummary>
CandidateIndex::partitionSummaries() const {
  std::vector<PartitionSummary> Summaries;
  Summaries.reserve(PartitionOrder.size());
  for (size_t I = 0; I < PartitionOrder.size(); ++I) {
    const Partition &P = Partitions.at(PartitionOrder[I]);
    PartitionSummary S;
    S.RetTy = PartitionOrder[I];
    S.FirstSeen = static_cast<uint32_t>(I);
    S.Live = P.NumLive;
    S.SizeSum = P.SizeSum;
    S.CostSum = P.CostSum;
    for (size_t G = 1; G < Fingerprint::NumGroups; ++G)
      if (P.GroupAgg[G] > P.GroupAgg[S.CoarseBucket])
        S.CoarseBucket = static_cast<uint32_t>(G);
    Summaries.push_back(S);
  }
  return Summaries;
}

std::vector<CandidateIndex::Hit>
CandidateIndex::query(const Fingerprint &FP, unsigned K, uint32_t ExcludeId,
                      const ProfitModel *Model, unsigned ExtraK) const {
  ++Counters.Queries;
  std::vector<Hit> Heap; // max-heap under ranksBefore: front = worst kept
  if (K == 0)
    return Heap;
  const Partition *P = partitionFor(FP.RetTy);
  if (!P || P->NumLive == 0)
    return Heap;

  // Epoch-stamped visited marks (no per-query clearing).
  if (VisitEpoch.size() < Entries.size())
    VisitEpoch.resize(Entries.size(), 0);
  if (++CurrentEpoch == 0) { // wrapped: stamps are stale, reset
    std::fill(VisitEpoch.begin(), VisitEpoch.end(), 0);
    CurrentEpoch = 1;
  }

  // Candidates this query can possibly examine: the partition's live
  // set, minus the excluded id if it lives here. Once that many have
  // been epoch-marked, any further walking only meets marked entries or
  // empty buckets — stop (this is what keeps sparse partitions from
  // degenerating into a full hull scan when the heap never fills).
  size_t MaxConsider = P->NumLive;
  if (ExcludeId < Entries.size() && Entries[ExcludeId].Live &&
      Entries[ExcludeId].FP.RetTy == FP.RetTy)
    --MaxConsider;
  if (MaxConsider == 0)
    return Heap;
  size_t Considered = 0;

  Heap.reserve(K + 1);
  auto bound = [&]() {
    return Heap.size() == K ? Heap.front().Distance : UINT64_MAX;
  };
  // Bounded extension (see the header): candidates the walk examined
  // anyway that fell inside the running top-K bound but not into the
  // top-K itself. Kept as a size-capped max-heap under ranksBefore, so
  // at the end it holds exactly the best ExtraK of everything admitted.
  std::vector<Hit> Ext;
  Ext.reserve(ExtraK);
  auto extAdmit = [&](const Hit &H) {
    if (ExtraK == 0)
      return;
    if (Ext.size() < ExtraK) {
      Ext.push_back(H);
      std::push_heap(Ext.begin(), Ext.end(), ranksBefore);
    } else if (ranksBefore(H, Ext.front())) {
      std::pop_heap(Ext.begin(), Ext.end(), ranksBefore);
      Ext.back() = H;
      std::push_heap(Ext.begin(), Ext.end(), ranksBefore);
    }
  };
  // Examines one live candidate: exact (early-exit) distance, admit into
  // the running top-k if it beats the current worst (spilling into the
  // extension otherwise).
  auto consider = [&](uint32_t Id) {
    if (Id == ExcludeId || VisitEpoch[Id] == CurrentEpoch)
      return;
    VisitEpoch[Id] = CurrentEpoch;
    ++Considered;
    uint64_t B = bound();
    // Cheap group-wise lower bound first: candidates it already rules
    // out never pay for the full per-opcode scan.
    if (B != UINT64_MAX &&
        fingerprintDistanceLowerBound(FP, Entries[Id].FP) > B)
      return;
    ++Counters.DistanceCalls;
    uint64_t D = fingerprintDistance(FP, Entries[Id].FP, B);
    if (D > B)
      return; // beyond (or tied-worse than) the current k-th best
    Hit H{D, Id, Entries[Id].ModuleId};
    if (Heap.size() < K) {
      Heap.push_back(H);
      std::push_heap(Heap.begin(), Heap.end(), ranksBefore);
    } else if (ranksBefore(H, Heap.front())) {
      Hit Evicted = Heap.front();
      std::pop_heap(Heap.begin(), Heap.end(), ranksBefore);
      Heap.back() = H;
      std::push_heap(Heap.begin(), Heap.end(), ranksBefore);
      extAdmit(Evicted);
    } else {
      extAdmit(H);
    }
  };

  // Phase 1 — LSH seeding: probe the query's own band buckets. Collisions
  // are probable near-duplicates, so this drives the bound toward its
  // final value after a handful of distance calls.
  for (size_t B = 0; B < Fingerprint::SketchBands; ++B) {
    auto BucketIt = P->Bands.find(FP.bandHash(B));
    if (BucketIt == P->Bands.end())
      continue;
    const std::vector<uint32_t> &Bucket = BucketIt->second;
    size_t Limit = std::min(Bucket.size(), MaxSeedProbesPerBand);
    for (size_t I = 0; I < Limit; ++I) {
      ++Counters.SeedProbes;
      consider(Bucket[I]);
    }
  }

  // Phase 2 — exact outward walk over the flat size buckets.
  // |Size(q) - Size(c)| lower-bounds the Manhattan distance, so once the
  // size gap alone exceeds the current k-th best distance, every
  // remaining bucket is provably worse: stopping is lossless and the
  // result equals the full brute-force ranking. Walking gap 0, 1, 2, ...
  // visits both sides at the same gap before moving outward; empty
  // buckets (including stale hull space left by retires) cost one
  // vector-size check.
  const std::vector<std::vector<uint32_t>> &Buckets = P->SizeBuckets;
  auto visitBucket = [&](uint64_t Size) {
    if (Size >= Buckets.size())
      return;
    for (uint32_t Id : Buckets[Size]) {
      ++Counters.ExpansionSteps;
      consider(Id);
    }
  };
  uint64_t LastGap = 0;
  if (FP.Size >= P->MinSize)
    LastGap = FP.Size - P->MinSize;
  if (P->MaxSize >= FP.Size)
    LastGap = std::max<uint64_t>(LastGap, P->MaxSize - FP.Size);
  for (uint64_t G = 0; G <= LastGap && Considered < MaxConsider; ++G) {
    uint64_t Bound = bound();
    if (Bound != UINT64_MAX && G > Bound)
      break;
    if (G <= FP.Size)
      visitBucket(uint64_t(FP.Size) - G);
    if (G > 0)
      visitBucket(uint64_t(FP.Size) + G);
  }

  std::sort_heap(Heap.begin(), Heap.end(), ranksBefore); // ascending
  // Append the bounded extension: every candidate with distance within
  // the *final* k-th-best bound was provably examined by the walk (its
  // size gap is <= its distance <= every intermediate bound), so Ext
  // holds the exact (distance, id)-ranked continuation — re-filtered
  // against the final bound, since entries may have been admitted under
  // a looser intermediate one.
  if (!Ext.empty() && Heap.size() == K) {
    uint64_t FinalBound = Heap.back().Distance;
    std::sort_heap(Ext.begin(), Ext.end(), ranksBefore);
    for (const Hit &H : Ext)
      if (H.Distance <= FinalBound)
        Heap.push_back(H);
  }
  // Annotation only: the hits selected (and their order) are fixed
  // above, so estimating on the final slate costs one model evaluation
  // per returned hit instead of one per candidate examined.
  if (Model)
    for (Hit &H : Heap)
      H.EstProfit = Model->estimate(FP, Entries[H.Id].FP, H.Distance);
  return Heap;
}
