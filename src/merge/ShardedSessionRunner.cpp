//===- merge/ShardedSessionRunner.cpp - Sharded whole-program sessions ---------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "merge/ShardedSessionRunner.h"
#include "codesize/SizeModel.h"
#include "ir/Instruction.h"
#include "ir/Module.h"
#include "ir/SymbolResolution.h"
#include "merge/DecisionCache.h"
#include "merge/MergePipeline.h"
#include "merge/StructuralHash.h"
#include "support/Chrono.h"
#include "support/ThreadPool.h"
#include "transforms/Canonicalize.h"
#include "transforms/Mem2Reg.h"
#include "transforms/Reg2Mem.h"
#include "transforms/Simplify.h"
#include <algorithm>
#include <cassert>
#include <chrono>
#include <unordered_map>
#include <utility>

using namespace salssa;

Module *salssa::selectHostModule(const std::vector<Module *> &Modules,
                                 HostPolicy Policy, TargetArch Arch) {
  if (Modules.empty())
    return nullptr;
  if (Policy == HostPolicy::First || Modules.size() == 1)
    return Modules.front();

  std::vector<uint64_t> Score(Modules.size(), 0);
  if (Policy == HostPolicy::Biggest) {
    for (size_t I = 0; I < Modules.size(); ++I)
      Score[I] = estimateModuleSize(*Modules[I], Arch);
  } else { // HostPolicy::Hottest
    // Call-site in-degree of each module's definitions, counted over the
    // whole registered set. Both sessions resolve the policy AFTER
    // linker-style symbol resolution, so cross-TU calls — retargeted
    // from per-module extern declarations onto their canonical
    // definitions — count toward the definition's module. Callees still
    // left as declarations host no body to be "hot" and are skipped.
    std::unordered_map<const Module *, size_t> Rank;
    for (size_t I = 0; I < Modules.size(); ++I)
      Rank[Modules[I]] = I;
    for (Module *M : Modules)
      for (Function *F : M->functions())
        for (BasicBlock *BB : *F)
          for (Instruction *I : *BB) {
            auto *CB = dyn_cast<CallBase>(I);
            if (!CB || !CB->getCallee() || CB->getCallee()->isDeclaration())
              continue;
            auto It = Rank.find(CB->getCallee()->getParent());
            if (It != Rank.end())
              ++Score[It->second];
          }
  }
  // Max score, ties to the earlier-registered module.
  size_t BestIdx = 0;
  for (size_t I = 1; I < Modules.size(); ++I)
    if (Score[I] > Score[BestIdx])
      BestIdx = I;
  return Modules[BestIdx];
}

ShardedSessionRunner::ShardedSessionRunner(const MergeDriverOptions &Options)
    : Options(Options) {}

void ShardedSessionRunner::addModule(Module &M) {
  assert(!Ran && "modules must be registered before run()");
  assert(std::find(Modules.begin(), Modules.end(), &M) == Modules.end() &&
         "module registered twice");
  assert((Modules.empty() ||
          &M.getContext() == &Modules.front()->getContext()) &&
         "all registered modules must share one Context");
  Modules.push_back(&M);
}

void ShardedSessionRunner::setHostModule(Module &M) {
  assert(!Ran && "host must be chosen before run()");
  assert(std::find(Modules.begin(), Modules.end(), &M) != Modules.end() &&
         "host must be a registered module");
  Host = &M;
}

namespace {

/// Everything one shard owns for its independent pipeline run.
struct ShardState {
  std::unique_ptr<Module> ScratchHost; ///< merged fns materialize here
  std::unordered_set<const Function *> PoolFns;
  MergeDriverOptions Options; ///< NumThreads = the shard's InnerThreads
  MergeDriverStats Stats;
  std::vector<PipelineEntryTrace> Journal;
  /// This shard's serial-commit-stage cache recordings; applied to the
  /// shared DecisionCache (and persisted) after splice. Keys never
  /// collide across shards — a (hash, occurrence) key belongs to one
  /// merge-compatibility class, and a class lives on one shard.
  std::vector<DecisionCacheUpdate> CacheUpdates;
  uint64_t Weight = 0; ///< Σ class CostSum (the balancer's load)
  // Splice cursors.
  size_t JCursor = 0;
  size_t RCursor = 0;
};

/// Deterministic spread seed for equal-weight classes: mixes the class's
/// first-appearance rank with its fingerprint coarse bucket
/// (splitmix64-style finalizer).
uint64_t classSeed(uint32_t FirstSeen, uint32_t CoarseBucket) {
  uint64_t X = (uint64_t(FirstSeen) << 32) | CoarseBucket;
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

} // namespace

CrossModuleStats ShardedSessionRunner::run() {
  assert(!Modules.empty() && "run() with no registered modules");
  assert(!Ran && "a session runs exactly once");
  Ran = true;

  CrossModuleStats Stats;
  Stats.NumModules = static_cast<unsigned>(Modules.size());
  auto T0 = std::chrono::steady_clock::now();
  const bool IsFMSA = Options.Technique == MergeTechnique::FMSA;

  Context &Ctx = Modules.front()->getContext();

  // Session prologue — stage for stage the unsharded CrossModuleMerger
  // prologue, so the pool the shards split is the pool the unsharded
  // session would have built.
  for (Module *M : Modules)
    Stats.SizeBefore += estimateModuleSize(*M, Options.Arch);
  SymbolResolutionStats Resolution = resolveCalleesAcrossModules(Modules);
  Stats.CanonicalSymbols = Resolution.CanonicalSymbols;
  Stats.RetargetedCalls = Resolution.RetargetedCalls;

  // Host policy resolves after symbol resolution so HostPolicy::Hottest
  // sees cross-TU call sites bound to their canonical definitions.
  if (!Host)
    Host = selectHostModule(Modules, Options.Host, Options.Arch);

  std::map<Function *, unsigned> BaselineSize;
  for (Module *M : Modules)
    for (Function *F : M->functions())
      if (!F->isDeclaration())
        BaselineSize[F] = estimateFunctionSize(*F, Options.Arch);

  if (IsFMSA)
    for (Module *M : Modules)
      for (Function *F : M->functions())
        if (!F->isDeclaration())
          demoteRegistersToMemory(*F, Ctx);

  // Session-level fault resolution (pre-cluster + cache I/O run outside
  // any pipeline), mirroring the pipeline's own fallback chain.
  FaultInjectionConfig SessionFaults = Options.Faults.armed()
                                           ? Options.Faults
                                           : FaultInjectionConfig::fromEnv();
  const FaultInjectionConfig *SessionFaultsPtr =
      SessionFaults.armed() ? &SessionFaults : nullptr;

  // Structural-hash fast path, serially at session level BEFORE the
  // plan: exact-clone groups commit into the real host (one name burn
  // per group, ahead of every splice burn — the same prologue order the
  // unsharded session uses, which is what keeps sharded name sequences
  // bit-identical), and the plan below only sees the surviving pool.
  std::unordered_set<const Function *> ClusterPool;
  const bool Clustering = Options.HashClustering;
  if (Clustering) {
    PreClusterStats PCS;
    ClusterPool = preClusterIdenticalFunctions(Modules, *Host, Options.Arch,
                                               BaselineSize, SessionFaultsPtr,
                                               PCS);
    Stats.Driver.HashClusterCommits = PCS.ClusterCommits;
    Stats.Driver.FingerprintFaults = PCS.FingerprintFaults;
  }

  // One shared decision cache for every shard: loaded (and
  // self-invalidated) once, read-only while shards run, appended to from
  // the shards' serial-commit recordings after splice.
  DecisionCache Cache;
  const bool UseCache = !Options.DecisionCachePath.empty();
  uint64_t OptionsFP = 0;
  if (UseCache) {
    OptionsFP = DecisionCache::optionsFingerprint(Options);
    if (Cache.load(Options.DecisionCachePath, OptionsFP, SessionFaultsPtr) ==
        DecisionCache::LoadOutcome::Rejected)
      ++Stats.Driver.CacheLoadRejected;
  }

  // --- Partition ------------------------------------------------------------
  // Fingerprint the pool exactly as MergePipeline::buildPool will (post
  // FMSA demotion), discover the merge-compatibility classes through a
  // planning CandidateIndex, and remember the global size-descending
  // walk — the splice stage replays it.
  struct PlanEntry {
    Function *F;
    Fingerprint FP; ///< kept whole: shards reuse it via the shard scope
  };
  std::vector<PlanEntry> Plan;
  CandidateIndex Planner;
  for (Module *M : Modules)
    for (Function *F : M->functions()) {
      // With clustering on, the include-set is the authoritative pool
      // predicate (thunked members are still "mergeable" but gone from
      // the session's pool; cluster bodies joined it).
      if (Clustering ? !ClusterPool.count(F) : !F->isMergeable())
        continue;
      Fingerprint FP = fingerprintFor(*F, Options.Canonicalize);
      Planner.insert(static_cast<uint32_t>(Plan.size()), FP, 0);
      Plan.push_back({F, FP});
    }
  std::stable_sort(Plan.begin(), Plan.end(),
                   [](const PlanEntry &A, const PlanEntry &B) {
                     return A.FP.Size > B.FP.Size;
                   });
  // The plan is final now; hand every shard a pointer view of its
  // fingerprints so buildPool does not recompute them per shard.
  std::unordered_map<const Function *, const Fingerprint *> FPByFn;
  FPByFn.reserve(Plan.size());
  for (const PlanEntry &E : Plan)
    FPByFn.emplace(E.F, &E.FP);

  std::vector<CandidateIndex::PartitionSummary> Classes =
      Planner.partitionSummaries();
  const unsigned Requested = Options.ShardCount == 0
                                 ? ThreadPool::resolveThreadCount(
                                       Options.NumThreads)
                                 : Options.ShardCount;
  const unsigned NumShards = static_cast<unsigned>(std::min<size_t>(
      std::max<size_t>(1, Classes.size()), std::max(1u, Requested)));

  // Longest-processing-time packing: classes by (weight desc, seed) onto
  // the currently-lightest shard. Both orders are total and
  // deterministic, so the assignment — hence each shard's pool — is too.
  std::stable_sort(Classes.begin(), Classes.end(),
                   [](const CandidateIndex::PartitionSummary &A,
                      const CandidateIndex::PartitionSummary &B) {
                     if (A.CostSum != B.CostSum)
                       return A.CostSum > B.CostSum;
                     return classSeed(A.FirstSeen, A.CoarseBucket) <
                            classSeed(B.FirstSeen, B.CoarseBucket);
                   });
  std::vector<ShardState> Shards(NumShards);
  std::unordered_map<Type *, uint32_t> ShardOf; // class ret type -> shard
  for (const CandidateIndex::PartitionSummary &C : Classes) {
    uint32_t Lightest = 0;
    for (uint32_t S = 1; S < NumShards; ++S)
      if (Shards[S].Weight < Shards[Lightest].Weight)
        Lightest = S;
    ShardOf[C.RetTy] = Lightest;
    Shards[Lightest].Weight += C.CostSum;
  }
  Stats.Driver.ShardCount = NumShards;
  if (!Plan.empty()) {
    uint64_t MaxW = 0, SumW = 0;
    for (const ShardState &S : Shards) {
      MaxW = std::max(MaxW, S.Weight);
      SumW += S.Weight;
    }
    Stats.Driver.ShardImbalance =
        SumW == 0 ? 1.0 : double(MaxW) * NumShards / double(SumW);
  } else {
    Stats.Driver.ShardImbalance = 0;
  }

  for (const PlanEntry &E : Plan)
    Shards[ShardOf.at(E.FP.RetTy)].PoolFns.insert(E.F);

  // --- Run the shards -------------------------------------------------------
  // One independent serial pipeline per shard, materializing into a
  // shard-local scratch host (never marked "staging": shard commits are
  // real commits, and the winners move to the real host at splice time).
  // Shards touch disjoint functions and the shared Context interns under
  // a lock, so running them concurrently is race-free (ir/README.md).
  const unsigned NumThreads =
      ThreadPool::resolveThreadCount(Options.NumThreads);
  // Threads left over after one per shard go to the shards' own attempt
  // stages (the pipeline's optimistic inner parallelism is outcome- and
  // journal-identical at every thread count, so this only moves
  // wall-clock): a skewed or single-class pool still saturates the
  // machine instead of degenerating to one serial pipeline.
  const unsigned InnerThreads = std::max(1u, NumThreads / NumShards);
  for (uint32_t S = 0; S < NumShards; ++S) {
    Shards[S].ScratchHost = std::make_unique<Module>(
        Host->getName() + ".shard" + std::to_string(S), Ctx);
    Shards[S].Options = Options;
    Shards[S].Options.NumThreads = InnerThreads;
    Shards[S].Options.ShardCount = 1;
  }
  auto runShard = [&](ShardState &Shard) {
    PipelineShardScope Scope;
    Scope.Materialize = Shard.ScratchHost.get();
    Scope.PoolFilter = &Shard.PoolFns;
    Scope.Fingerprints = &FPByFn;
    Scope.Journal = &Shard.Journal;
    if (UseCache) {
      Scope.Cache = &Cache; // read-only while shards run
      Scope.CacheUpdates = &Shard.CacheUpdates;
    }
    MergePipeline Pipeline(Modules, *Host, Shard.Options, BaselineSize,
                           Shard.Stats, Scope);
    Pipeline.run();
  };
  if (NumThreads <= 1 || NumShards <= 1) {
    for (ShardState &Shard : Shards)
      runShard(Shard);
  } else {
    auto StageT0 = std::chrono::steady_clock::now();
    ThreadPool Workers(std::min(NumThreads, NumShards));
    for (ShardState &Shard : Shards)
      Workers.submit([&runShard, &Shard] { runShard(Shard); });
    Workers.wait();
    // The parallel shard stage is this session's "attempt stage": any
    // inner optimistic stages run nested inside this wall interval, so
    // their own AttemptStageSeconds are deliberately NOT summed on top.
    Stats.Driver.AttemptStageSeconds += secondsSince(StageT0);
  }
  Stats.Driver.NumThreadsUsed = std::max(1u, NumThreads);

  // --- Splice ---------------------------------------------------------------
  // Replay the unsharded session's pool walk: original entries in global
  // size-descending order, remerge entries appended at commit time.
  // Each step consumes the owning shard's next journal entry; per-class
  // processing is identical in the sharded and unsharded runs, so the
  // interleaved streams reconstruct the unsharded record order exactly.
  // One unique name is burned per record — the burn the unsharded
  // pipeline performs once per attempt — and the committed attempt's
  // merged function is adopted into the real host under the name burned
  // at its own record, which is precisely the serial allocator's
  // behaviour. Name strings are re-derived from Function pointers here:
  // every merged function referenced by a later record was adopted (and
  // finally named) by an earlier splice step.
  std::vector<uint32_t> Queue;
  Queue.reserve(Plan.size());
  for (const PlanEntry &E : Plan)
    Queue.push_back(ShardOf.at(E.FP.RetTy));
  for (size_t Q = 0; Q < Queue.size(); ++Q) {
    ShardState &Shard = Shards[Queue[Q]];
    assert(Shard.JCursor < Shard.Journal.size() &&
           "shard journal exhausted before the replayed walk");
    const PipelineEntryTrace &Trace = Shard.Journal[Shard.JCursor++];
    for (size_t R = 0; R < Trace.Partners.size(); ++R) {
      MergeRecord Rec = Shard.Stats.Records[Shard.RCursor + R];
      Rec.Name1 = Trace.EntryFn->getName();
      Rec.Name2 = Trace.Partners[R]->getName();
      // An attempt burns a unique name iff its code generation ran
      // (Completed and BudgetBody outcomes); faulted or
      // alignment-budget-rejected attempts burned nothing, and replaying
      // a burn for them would skew every later merged name off the
      // unsharded run's sequence.
      std::string Burned;
      if (attemptBurnedName(Rec.Stats.Outcome))
        Burned = Host->makeUniqueName(Rec.Name1 + ".m");
      if (static_cast<int32_t>(R) == Trace.WinnerRecord)
        Host->adoptFunction(
            Trace.Merged->getParent()->takeFunction(Trace.Merged), Burned);
      Stats.Driver.Records.push_back(std::move(Rec));
    }
    Shard.RCursor += Trace.Partners.size();
    if (Trace.WinnerRecord >= 0 && Options.AllowRemerge)
      Queue.push_back(Queue[Q]); // the remerge entry joins its class's shard
  }

  // Aggregate the shard stats (records were merged above, in replay
  // order). Timing fields are sums of per-shard accounting — CPU-second
  // semantics across shards, exactly like the per-worker accumulators
  // inside one pipeline.
  for (ShardState &Shard : Shards) {
    assert(Shard.JCursor == Shard.Journal.size() &&
           Shard.RCursor == Shard.Stats.Records.size() &&
           "splice must consume every shard journal entry and record");
    Stats.Driver.Attempts += Shard.Stats.Attempts;
    Stats.Driver.ProfitableMerges += Shard.Stats.ProfitableMerges;
    Stats.Driver.CommittedMerges += Shard.Stats.CommittedMerges;
    Stats.Driver.CrossModuleMerges += Shard.Stats.CrossModuleMerges;
    Stats.Driver.AlignmentSeconds += Shard.Stats.AlignmentSeconds;
    Stats.Driver.CodeGenSeconds += Shard.Stats.CodeGenSeconds;
    Stats.Driver.RankingSeconds += Shard.Stats.RankingSeconds;
    // Speculation-waste accounting from the shards' own optimistic
    // attempt stages (non-zero whenever leftover threads gave a shard
    // InnerThreads > 1) — sharded sessions must not report 0 waste
    // while their inner pipelines speculate.
    Stats.Driver.SpeculativeAttempts += Shard.Stats.SpeculativeAttempts;
    Stats.Driver.SpeculativeDiscarded += Shard.Stats.SpeculativeDiscarded;
    Stats.Driver.InlineReattempts += Shard.Stats.InlineReattempts;
    Stats.Driver.CommitConflicts += Shard.Stats.CommitConflicts;
    Stats.Driver.SpeculationsSkipped += Shard.Stats.SpeculationsSkipped;
    // Containment counters: the authoritative four are sums of per-shard
    // serial-commit counts — deterministic because every shard's record
    // stream is (see MergeDriverStats) — the two wastage counters sum
    // like the other parallel-only instrumentation.
    Stats.Driver.AttemptFailures += Shard.Stats.AttemptFailures;
    Stats.Driver.BudgetRejects += Shard.Stats.BudgetRejects;
    Stats.Driver.VerifierRejects += Shard.Stats.VerifierRejects;
    Stats.Driver.QuarantinedFunctions += Shard.Stats.QuarantinedFunctions;
    Stats.Driver.SpeculativeFailures += Shard.Stats.SpeculativeFailures;
    Stats.Driver.TaskFailures += Shard.Stats.TaskFailures;
    Stats.Driver.PeakAlignmentBytes = std::max(
        Stats.Driver.PeakAlignmentBytes, Shard.Stats.PeakAlignmentBytes);
    Stats.Driver.PairingDistanceCalls += Shard.Stats.PairingDistanceCalls;
    Stats.Driver.PairingProbes += Shard.Stats.PairingProbes;
    // Cache counters are serial-commit-stage counts, summed like the
    // authoritative containment counters. (HashClusterCommits,
    // FingerprintFaults and CacheLoadRejected are session-level and were
    // set before any shard launched.)
    Stats.Driver.CacheHits += Shard.Stats.CacheHits;
    Stats.Driver.CacheMisses += Shard.Stats.CacheMisses;
    Stats.Driver.CacheSkips += Shard.Stats.CacheSkips;
    Stats.Driver.AdaptiveThresholdMax = std::max(
        Stats.Driver.AdaptiveThresholdMax, Shard.Stats.AdaptiveThresholdMax);
    Stats.Driver.AdaptiveThresholdFinal =
        std::max(Stats.Driver.AdaptiveThresholdFinal,
                 Shard.Stats.AdaptiveThresholdFinal);
    assert(Shard.ScratchHost->functions().empty() &&
           "splice left a merged function behind in a scratch host");
  }

  // Persist the cache: shard recordings applied in shard order (keys are
  // disjoint across shards) and serialized sorted by key, so the file
  // bytes are identical at every shard and thread count.
  if (UseCache) {
    for (ShardState &Shard : Shards)
      Cache.apply(std::move(Shard.CacheUpdates));
    Cache.save(Options.DecisionCachePath, OptionsFP, SessionFaultsPtr);
  }

  // Session epilogue, as in CrossModuleMerger.
  if (IsFMSA)
    for (Module *M : Modules)
      for (Function *F : M->functions()) {
        if (F->isDeclaration())
          continue;
        promoteAllocasToRegisters(*F, Ctx);
        simplifyFunction(*F, Ctx);
      }

  for (Module *M : Modules)
    Stats.SizeAfter += estimateModuleSize(*M, Options.Arch);
  Stats.CrossModuleMerges = Stats.Driver.CrossModuleMerges;
  Stats.IntraModuleMerges =
      Stats.Driver.CommittedMerges - Stats.Driver.CrossModuleMerges;
  Stats.Driver.TotalSeconds = secondsSince(T0);
  return Stats;
}
