//===- merge/SSARepair.cpp - Dominance repair + phi-node coalescing -----------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "merge/SSARepair.h"
#include "analysis/Dominators.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "transforms/Mem2Reg.h"
#include <algorithm>
#include <set>

using namespace salssa;

namespace {

/// Collects the definitions that violate the dominance property anywhere
/// in \p F, in deterministic encounter order (function layout order, not
/// pointer order — experiment reproducibility depends on this).
std::vector<Instruction *> findViolatingDefs(Function &F) {
  DominatorTree DT(F);
  const CFGInfo &CFG = DT.getCFG();
  std::set<Instruction *> Seen;
  std::vector<Instruction *> Defs;
  auto Record = [&](Instruction *D) {
    if (Seen.insert(D).second)
      Defs.push_back(D);
  };
  for (BasicBlock *BB : F) {
    if (!CFG.isReachable(BB))
      continue;
    for (Instruction *I : *BB) {
      if (auto *P = dyn_cast<PhiInst>(I)) {
        for (unsigned K = 0; K < P->getNumIncoming(); ++K) {
          auto *D = dyn_cast<Instruction>(P->getIncomingValue(K));
          if (D && D->getParent() &&
              !DT.dominatesBlockExit(D, P->getIncomingBlock(K)))
            Record(D);
        }
        continue;
      }
      for (Value *Op : I->operands()) {
        auto *D = dyn_cast<Instruction>(Op);
        if (D && D->getParent() && !DT.dominates(D, I))
          Record(D);
      }
    }
  }
  return Defs;
}

/// Splits the invoke->normal edge so a spill store can follow the
/// definition (same pattern as Reg2Mem).
BasicBlock *splitInvokeNormalEdge(InvokeInst *Inv, Context &Ctx) {
  BasicBlock *From = Inv->getParent();
  BasicBlock *To = Inv->getNormalDest();
  Function *F = From->getParent();
  BasicBlock *Mid = F->createBlock(From->getName() + ".repair", To);
  IRBuilder B(Ctx, Mid);
  B.createBr(To);
  Inv->setNormalDest(Mid);
  To->replacePhiUsesWith(From, Mid);
  return Mid;
}

/// Places `store Def, Slot` immediately after \p Def's definition point.
void storeDefToSlot(Instruction *Def, AllocaInst *Slot, Context &Ctx) {
  IRBuilder B(Ctx);
  if (auto *Inv = dyn_cast<InvokeInst>(Def)) {
    BasicBlock *Mid = splitInvokeNormalEdge(Inv, Ctx);
    B.setInsertPoint(Mid->getTerminator());
  } else if (Def->isPhi()) {
    Instruction *FirstNonPhi = Def->getParent()->getFirstNonPhi();
    assert(FirstNonPhi && "block with only phis");
    B.setInsertPoint(FirstNonPhi);
  } else {
    assert(!Def->isTerminator() && "value-producing terminator is invoke");
    auto Next = std::next(
        std::find(Def->getParent()->begin(), Def->getParent()->end(), Def));
    B.setInsertPoint(*Next);
  }
  B.createStore(Def, Slot);
}

/// Replaces every use in \p Users of \p Def with a load from \p Slot
/// placed directly before the user (phi uses: at the incoming block's
/// terminator).
void rewriteUsesWithLoads(Instruction *Def, const std::vector<User *> &Users,
                          AllocaInst *Slot, Context &Ctx) {
  IRBuilder B(Ctx);
  for (User *U : Users) {
    auto *UI = cast<Instruction>(U);
    if (auto *P = dyn_cast<PhiInst>(UI)) {
      for (unsigned K = 0; K < P->getNumIncoming(); ++K) {
        if (P->getIncomingValue(K) != Def)
          continue;
        B.setInsertPoint(P->getIncomingBlock(K)->getTerminator());
        P->setIncomingValue(K, B.createLoad(Def->getType(), Slot));
      }
      continue;
    }
    if (UI->findOperand(Def) < 0)
      continue; // duplicate snapshot entry, already rewritten
    B.setInsertPoint(UI);
    Value *L = B.createLoad(Def->getType(), Slot);
    for (unsigned K = 0; K < UI->getNumOperands(); ++K)
      if (UI->getOperand(K) == Def)
        UI->setOperand(K, L);
  }
}

/// The user-block set UB(d) = { Block(u) : u in Users(d) } of §4.4.
std::set<const BasicBlock *> userBlocks(const Instruction *Def) {
  std::set<const BasicBlock *> Blocks;
  for (const User *U : Def->users()) {
    const auto *UI = cast<Instruction>(U);
    if (UI->getParent())
      Blocks.insert(UI->getParent());
  }
  return Blocks;
}

} // namespace

SSARepairStats salssa::repairSSA(
    Function &Merged, Context &Ctx,
    const std::map<Instruction *, MergeOrigin> &Origin,
    bool EnableCoalescing) {
  SSARepairStats Stats;
  std::vector<Instruction *> Defs = findViolatingDefs(Merged);
  Stats.ViolatingDefs = static_cast<unsigned>(Defs.size());
  if (Defs.empty())
    return Stats;

  auto originOf = [&](Instruction *I) {
    auto It = Origin.find(I);
    return It == Origin.end() ? MergeOrigin::Shared : It->second;
  };

  // --- Phi-node coalescing: pair disjoint definitions (one per input
  // function, same type) greedily by descending user-block overlap.
  std::map<Instruction *, Instruction *> Partner;
  if (EnableCoalescing) {
    std::vector<Instruction *> Side1, Side2;
    for (Instruction *D : Defs) {
      if (originOf(D) == MergeOrigin::FromF1)
        Side1.push_back(D);
      else if (originOf(D) == MergeOrigin::FromF2)
        Side2.push_back(D);
    }
    struct Candidate {
      size_t Overlap;
      Instruction *D1;
      Instruction *D2;
    };
    std::vector<Candidate> Candidates;
    std::map<Instruction *, std::set<const BasicBlock *>> UB;
    for (Instruction *D : Side1)
      UB[D] = userBlocks(D);
    for (Instruction *D : Side2)
      UB[D] = userBlocks(D);
    for (Instruction *D1 : Side1)
      for (Instruction *D2 : Side2) {
        if (D1->getType() != D2->getType())
          continue;
        size_t Overlap = 0;
        for (const BasicBlock *BB : UB[D1])
          Overlap += UB[D2].count(BB);
        if (Overlap > 0)
          Candidates.push_back({Overlap, D1, D2});
      }
    std::stable_sort(Candidates.begin(), Candidates.end(),
                     [](const Candidate &A, const Candidate &B) {
                       return A.Overlap > B.Overlap;
                     });
    for (const Candidate &C : Candidates) {
      if (Partner.count(C.D1) || Partner.count(C.D2))
        continue;
      Partner[C.D1] = C.D2;
      Partner[C.D2] = C.D1;
      ++Stats.CoalescedPairs;
    }
  }

  // --- Demotion: one slot per definition (shared for coalesced pairs).
  // Snapshot the user lists before inserting any spill stores.
  std::map<Instruction *, std::vector<User *>> SavedUsers;
  for (Instruction *D : Defs)
    SavedUsers[D] = std::vector<User *>(D->users().begin(), D->users().end());

  IRBuilder B(Ctx);
  BasicBlock *Entry = Merged.getEntryBlock();
  std::vector<AllocaInst *> Slots;
  std::map<Instruction *, AllocaInst *> SlotOf;
  for (Instruction *D : Defs) {
    auto PIt = Partner.find(D);
    if (PIt != Partner.end() && SlotOf.count(PIt->second)) {
      SlotOf[D] = SlotOf[PIt->second];
      continue;
    }
    B.setInsertPoint(Entry->front());
    AllocaInst *Slot = B.createAlloca(D->getType(), 1, "repair.slot");
    // Move the builder insertion semantics: createAlloca appends before
    // Entry->front(), keeping all slots at the top of the entry block.
    Slots.push_back(Slot);
    SlotOf[D] = Slot;
    ++Stats.SlotsCreated;
  }

  for (Instruction *D : Defs)
    storeDefToSlot(D, SlotOf.at(D), Ctx);
  for (Instruction *D : Defs)
    rewriteUsesWithLoads(D, SavedUsers.at(D), SlotOf.at(D), Ctx);

  // --- Promotion: the standard SSA construction algorithm restores the
  // dominance property, inserting phis (with undef pseudo-definitions on
  // paths that bypass the store) exactly as §4.3 describes.
  Mem2RegStats M2R = promoteAllocas(Merged, Ctx, Slots);
  Stats.PhisInserted = M2R.PhisInserted;
  return Stats;
}
