//===- merge/MergedFunctionGenerator.h - SalSSA code generator ----------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-down, CFG-driven code generator at the core of SalSSA (§4 of
/// the paper). Given two input functions and a sequence alignment, it:
///
///  1. generates the merged control-flow graph, one basic block per
///     matched label/instruction pair plus one block per run of
///     non-matching code, chained with (possibly fid-conditional)
///     branches (§4.1);
///  2. copies phi-nodes attached to their labels (§4.1.1) and maintains
///     the value mapping and block mapping (§4.1.2);
///  3. assigns operands: label operands first (label selection §4.2.1,
///     with the xor optimization of Fig 11), landing blocks for invokes
///     (§4.2.2), then value operands with select-on-fid and commutative
///     reordering (Fig 8/9), and finally phi incoming values through the
///     block mapping (§4.2.3);
///  4. restores the SSA dominance property via the standard SSA
///     construction algorithm, optionally coalescing disjoint definitions
///     first (§4.3/§4.4 — implemented in SSARepair).
///
/// The same generator serves the FMSA baseline: fed with register-demoted
/// (phi-free) inputs and with coalescing/xor fusion disabled, it produces
/// the sequence-shaped merged code FMSA emits — including FMSA's defining
/// failure mode, stores/loads whose slot address is chosen by a select,
/// which block later register promotion.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_MERGE_MERGEDFUNCTIONGENERATOR_H
#define SALSSA_MERGE_MERGEDFUNCTIONGENERATOR_H

#include "align/NeedlemanWunsch.h"
#include "merge/MergeOptions.h"
#include "merge/ParameterMerge.h"

namespace salssa {

/// Output of code generation (before profitability evaluation).
struct GeneratedMerge {
  Function *Merged = nullptr;
  MergedSignature Signature;
  unsigned SelectsInserted = 0;
  unsigned LabelSelectionBlocks = 0;
  unsigned XorFusions = 0;
  unsigned RepairSlots = 0;
  unsigned CoalescedPairs = 0;
};

/// Generates the merged function for \p F1 and \p F2 under \p Alignment.
/// The inputs are not modified. The merged function is created in
/// \p TargetModule — or the module of F1 when null — with a unique name
/// derived from \p NameHint; it is fully simplified and verifier-clean on
/// return. Passing a worker-private staging module makes generation safe
/// to run concurrently with other attempts (the inputs' module is then
/// only read, never mutated); the pipeline later moves the winner with
/// Module::takeFunction/adoptFunction.
GeneratedMerge generateMergedFunction(Function &F1, Function &F2,
                                      const std::vector<SeqItem> &Seq1,
                                      const std::vector<SeqItem> &Seq2,
                                      const AlignmentResult &Alignment,
                                      const MergeCodeGenOptions &Options,
                                      const std::string &NameHint,
                                      Module *TargetModule = nullptr);

} // namespace salssa

#endif // SALSSA_MERGE_MERGEDFUNCTIONGENERATOR_H
