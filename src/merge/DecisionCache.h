//===- merge/DecisionCache.h - Persistent cross-run decision cache ------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent cross-run decision cache (per *Optimistic Global
/// Function Merger*): a content-addressed record of what the serial
/// commit stage decided for each pool entry, keyed so a warm run over
/// unchanged code can replay the whole entry — ranking, rejected
/// attempts, and the winning alignment — without touching the
/// CandidateIndex or the Needleman-Wunsch aligner.
///
/// Key derivation. A pool entry is addressed by
/// (StructuralHash, occurrence index): the canonical body hash plus how
/// many earlier pool entries (in serial pool order) share that hash.
/// The occurrence index disambiguates exact clones and is shard- and
/// thread-invariant: equal hashes imply equal return types, so all
/// occurrences of one hash live in one merge-compatibility class, and
/// within a class the pool order (stable sort by fingerprint size over
/// module/creation order) is the same in every shard plan. Partners
/// inside a decision are addressed the same way, which is also what
/// lets one cache file warm sessions at any shard count.
///
/// Invalidation. The file carries a format-version + an options
/// fingerprint (hash geometry, technique, selection mode, budget caps —
/// everything that can change a decision, deliberately excluding thread
/// and shard counts). Any mismatch, size/checksum failure or truncation
/// rejects the load: the session counts CacheLoadRejected and runs
/// cold. A rejected or missing cache can never produce a wrong merge —
/// only the fast path is lost.
///
/// Determinism contract. A warm run replays cached entries only when
/// every referenced partner resolves to a live pool entry; anything
/// else falls back to the live rank/attempt path for that entry (and
/// re-records it). For unchanged input, a warm run burns the same
/// unique-name sequence and emits byte-identical merged modules to its
/// cold run; for changed input the replayed subset is the *recorded*
/// decision (optimistic content-addressed caching) — delete the cache
/// file to force full re-ranking. Writes happen only at the serial
/// commit stage; sharded sessions collect per-shard updates and apply
/// them serially after splice.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_MERGE_DECISIONCACHE_H
#define SALSSA_MERGE_DECISIONCACHE_H

#include "merge/StructuralHash.h"
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace salssa {

struct FaultInjectionConfig;
struct MergeDriverOptions;

/// Content address of one pool entry: canonical body hash + occurrence
/// index among equal hashes in serial pool order.
struct DecisionKey {
  StructuralHash Hash;
  uint32_t Occ = 0;

  bool operator==(const DecisionKey &O) const {
    return Hash == O.Hash && Occ == O.Occ;
  }
  bool operator<(const DecisionKey &O) const {
    return Hash != O.Hash ? Hash < O.Hash : Occ < O.Occ;
  }
};

/// One attempt of a recorded slate, in attempt order. Non-winning
/// attempts replay as skipped records (AttemptOutcome::CacheSkipped)
/// plus a ProfitModel observation; the winning attempt additionally
/// carries the full alignment (gaps included) so code generation runs
/// with zero aligner work.
struct CachedAttempt {
  DecisionKey Partner;
  uint64_t Distance = 0;   ///< fingerprint distance, as ranked
  int64_t ProfitObs = 0;   ///< MergeAttempt::profit() of the attempt
  bool Profitable = false; ///< profit() > 0
  /// Winner-only alignment replay payload (empty for non-winners):
  /// linearized sequence lengths for validation plus the aligner's
  /// entry list as (Idx1, Idx2) with -1 gaps.
  uint32_t SeqLen1 = 0;
  uint32_t SeqLen2 = 0;
  std::vector<std::pair<int32_t, int32_t>> Align;
};

/// The serial commit stage's full decision for one pool entry. Only
/// clean entries are recorded: every attempt completed (no faults, no
/// budget rejects, no verifier rejects), so replay never needs the
/// failure-containment ladder.
struct CachedDecision {
  std::vector<CachedAttempt> Attempts; ///< empty = entry ranked dry
  int32_t Winner = -1;                 ///< index into Attempts, -1 = no commit
  /// Adaptive-threshold vote replay (SelectionStrategy::Adaptive): the
  /// votes this entry cast when recorded.
  bool VoteTallied = false;
  bool VoteShrink = false;
  bool VoteWiden = false;
};

/// One pending cache write, produced at the serial commit stage and
/// applied by the owning session.
struct DecisionCacheUpdate {
  DecisionKey Key;
  CachedDecision Decision;
};

/// The cache proper: an in-memory decision map with versioned,
/// checksummed binary persistence. Owned by the session
/// (CrossModuleMerger / ShardedSessionRunner); pipelines see a
/// read-only view plus an update vector (merge/MergePipeline.h).
class DecisionCache {
public:
  /// Bumped on any change to the file format, the structural-hash
  /// algorithm, or replay semantics.
  static constexpr uint32_t FormatVersion = 1;

  enum class LoadOutcome : uint8_t {
    Loaded,  ///< file read, verified, decisions available
    Missing, ///< no file — a plain cold run
    Rejected ///< damaged or incompatible — cold run + CacheLoadRejected
  };

  /// Fingerprint of every option that can change a recorded decision.
  /// Thread count, commit window and shard count are excluded by
  /// design: decisions are invariant across them.
  static uint64_t optionsFingerprint(const MergeDriverOptions &Options);

  /// Loads \p Path, verifying magic, version, options fingerprint,
  /// payload size and checksum. \p Faults, when armed, may fire
  /// FaultKind::CacheIO (keyed by path) to force the Rejected path.
  LoadOutcome load(const std::string &Path, uint64_t OptionsFP,
                   const FaultInjectionConfig *Faults);

  /// Serializes (sorted by key — deterministic bytes) and writes via
  /// temp + rename. Returns false on I/O failure or a fired CacheIO
  /// fault; the session treats that as "no cache written", never as an
  /// error.
  bool save(const std::string &Path, uint64_t OptionsFP,
            const FaultInjectionConfig *Faults) const;

  const CachedDecision *lookup(const DecisionKey &Key) const {
    auto It = Entries.find(Key);
    return It == Entries.end() ? nullptr : &It->second;
  }

  /// Insert-or-replace every update (fresh recordings win over stale
  /// entries for the same key).
  void apply(std::vector<DecisionCacheUpdate> &&Updates);

  size_t size() const { return Entries.size(); }
  bool empty() const { return Entries.empty(); }

private:
  std::map<DecisionKey, CachedDecision> Entries;
};

} // namespace salssa

#endif // SALSSA_MERGE_DECISIONCACHE_H
