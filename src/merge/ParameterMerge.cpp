//===- merge/ParameterMerge.cpp - Merged signature construction ---------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "merge/ParameterMerge.h"

using namespace salssa;

MergedSignature salssa::mergeSignatures(const Function &F1,
                                        const Function &F2, Context &Ctx) {
  assert(F1.getReturnType() == F2.getReturnType() &&
         "candidate filtering guarantees equal return types");
  MergedSignature Sig;
  std::vector<Type *> Params;
  Params.push_back(Ctx.int1Ty()); // %fid

  Sig.ArgIndex1.resize(F1.getNumArgs());
  Sig.ArgIndex2.resize(F2.getNumArgs());

  // F1's parameters claim slots 1..n in order.
  for (unsigned I = 0; I < F1.getNumArgs(); ++I) {
    Params.push_back(F1.getArg(I)->getType());
    Sig.ArgIndex1[I] = static_cast<unsigned>(Params.size() - 1);
  }
  // F2's parameters greedily reuse the first unclaimed slot of the same
  // type, otherwise append.
  std::vector<bool> Claimed(Params.size(), false);
  Claimed[0] = true;
  for (unsigned I = 0; I < F2.getNumArgs(); ++I) {
    Type *Ty = F2.getArg(I)->getType();
    bool Found = false;
    for (unsigned S = 1; S < Params.size(); ++S) {
      if (!Claimed[S] && Params[S] == Ty) {
        Claimed[S] = true;
        Sig.ArgIndex2[I] = S;
        Found = true;
        break;
      }
    }
    if (!Found) {
      Params.push_back(Ty);
      Claimed.push_back(true);
      Sig.ArgIndex2[I] = static_cast<unsigned>(Params.size() - 1);
    }
  }

  Sig.FnTy = Ctx.types().getFunctionTy(F1.getReturnType(), Params);
  return Sig;
}
