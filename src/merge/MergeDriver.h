//===- merge/MergeDriver.h - Module-level function merging pass ---------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The module-level pass (the "FM" box of Fig 16): ranks candidate pairs
/// with fingerprints, attempts up to t merges per function, commits the
/// most profitable one, and feeds merged functions back into the pool.
///
/// For FMSA the driver reproduces the paper's pipeline faithfully:
/// register demotion is applied to *every* function up front (merged or
/// not — the source of "FMSA Residue", Fig 18), alignment operates on the
/// inflated bodies, and a final promotion/simplification round models the
/// late clean-up passes that mostly undo the residue.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_MERGE_MERGEDRIVER_H
#define SALSSA_MERGE_MERGEDRIVER_H

#include "merge/FunctionMerger.h"
#include <string>
#include <vector>

namespace salssa {

class Module;

/// How the driver ranks merge candidates for each function.
enum class RankingStrategy : uint8_t {
  /// The paper's scheme verbatim: rescan the whole pool per function —
  /// O(n²·buckets). Kept for A/B benchmarking (bench_ranking_scaling).
  BruteForce,
  /// CandidateIndex: LSH-seeded, size-bounded exact top-k with
  /// incremental maintenance — near-linear in practice, and guaranteed
  /// to select the same candidates (hence commit the same merges) as
  /// BruteForce.
  CandidateIndex,
};

/// Pass configuration.
struct MergeDriverOptions {
  MergeTechnique Technique = MergeTechnique::SalSSA;
  /// The exploration threshold t of §5.1 (paper evaluates 1, 5, 10).
  unsigned ExplorationThreshold = 1;
  /// SalSSA-NoPC when false (Fig 20 ablation); ignored for FMSA.
  bool EnablePhiCoalescing = true;
  /// Target whose size model drives profitability.
  TargetArch Arch = TargetArch::X86Like;
  /// Allow merged functions to be merged again (as in the paper).
  bool AllowRemerge = true;
  /// Candidate ranking implementation; results are identical, only the
  /// pairing-phase cost differs.
  RankingStrategy Ranking = RankingStrategy::CandidateIndex;
};

/// One committed/attempted merge record (drives Fig 19/21/22/23).
struct MergeRecord {
  std::string Name1;
  std::string Name2;
  MergeAttemptStats Stats;
  bool Committed = false;
};

/// Aggregate results of one pass execution.
struct MergeDriverStats {
  unsigned Attempts = 0;
  unsigned ProfitableMerges = 0; ///< the Fig 21 metric
  unsigned CommittedMerges = 0;
  double AlignmentSeconds = 0;
  double CodeGenSeconds = 0;
  double RankingSeconds = 0;   ///< pairing phase only (candidate ranking)
  double TotalSeconds = 0;     ///< whole-pass wall time (Fig 24 numerator)
  size_t PeakAlignmentBytes = 0; ///< Fig 22 metric
  std::vector<MergeRecord> Records;
};

/// Runs function merging over \p M, mutating it in place.
MergeDriverStats runFunctionMerging(Module &M,
                                    const MergeDriverOptions &Options);

/// Runs only FMSA's preprocessing over \p M without merging anything —
/// the "FMSA Residue" series of Fig 18.
void runFMSAResidueOnly(Module &M);

} // namespace salssa

#endif // SALSSA_MERGE_MERGEDRIVER_H
