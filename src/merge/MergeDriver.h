//===- merge/MergeDriver.h - Module-level function merging pass ---------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The module-level pass (the "FM" box of Fig 16): ranks candidate pairs
/// with fingerprints, attempts up to t merges per function, commits the
/// most profitable one, and feeds merged functions back into the pool.
///
/// For FMSA the driver reproduces the paper's pipeline faithfully:
/// register demotion is applied to *every* function up front (merged or
/// not — the source of "FMSA Residue", Fig 18), alignment operates on the
/// inflated bodies, and a final promotion/simplification round models the
/// late clean-up passes that mostly undo the residue.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_MERGE_MERGEDRIVER_H
#define SALSSA_MERGE_MERGEDRIVER_H

#include "merge/FunctionMerger.h"
#include "support/FaultInjection.h"
#include <string>
#include <vector>

namespace salssa {

class Module;

/// How the driver ranks merge candidates for each function.
enum class RankingStrategy : uint8_t {
  /// The paper's scheme verbatim: rescan the whole pool per function —
  /// O(n²·buckets). Kept for A/B benchmarking (bench_ranking_scaling).
  BruteForce,
  /// CandidateIndex: LSH-seeded, size-bounded exact top-k with
  /// incremental maintenance — near-linear in practice, and guaranteed
  /// to select the same candidates (hence commit the same merges) as
  /// BruteForce.
  CandidateIndex,
};

/// Pass configuration. A mirror of this struct — one row per knob with
/// default, units and interactions — lives in src/merge/README.md
/// ("Options reference"); keep the two in step.
struct MergeDriverOptions {
  /// Which merging algorithm runs: SalSSA (the paper's SSA-form
  /// technique, the default) or FMSA (the exchange-format baseline it
  /// improves on, kept for the comparison figures). Most post-paper
  /// machinery (pipeline stages, cross-module sessions, MergeService)
  /// requires SalSSA.
  MergeTechnique Technique = MergeTechnique::SalSSA;
  /// The exploration threshold t of §5.1: how many top-ranked
  /// candidates are *attempted* per pool entry before the best
  /// profitable one commits (paper evaluates 1, 5, 10). Default 1.
  /// Unit: candidates per entry. Larger t finds more merges at
  /// linearly more attempt work; under SelectionStrategy::Adaptive the
  /// effective t floats per merge-compatibility class and this value
  /// is only its starting point.
  unsigned ExplorationThreshold = 1;
  /// Coalesce phi-webs in merged output (§4.3). Default true; false is
  /// the paper's SalSSA-NoPC ablation (Fig 20) — more copies, bigger
  /// merged bodies, same semantics. Ignored for FMSA.
  bool EnablePhiCoalescing = true;
  /// Target whose size model (codesize/SizeModel.h) drives
  /// profitability. Default X86Like. Changing it changes which merges
  /// are deemed profitable, hence the whole commit sequence — it is
  /// part of the DecisionCache options fingerprint for that reason.
  TargetArch Arch = TargetArch::X86Like;
  /// Allow merged functions to re-enter the pool and be merged again
  /// (as in the paper). Default true; false caps every function at one
  /// merge generation.
  bool AllowRemerge = true;
  /// Candidate ranking implementation; results are identical by
  /// construction (candidate_index_test pins it), only the
  /// pairing-phase cost differs. Default CandidateIndex (near-linear);
  /// BruteForce is the paper's O(n²) scan kept for A/B benchmarking.
  RankingStrategy Ranking = RankingStrategy::CandidateIndex;
  /// Candidate *selection* policy layered on top of the ranking (see
  /// SelectionStrategy, MergeOptions.h). Distance (the default) keeps
  /// the paper's scheme and is bit-identical to the pre-selection-layer
  /// driver; Profit re-ranks a widened slate by estimated profit with
  /// same-module tie-breaking; Adaptive additionally drives the
  /// exploration threshold from observed selection outcomes. All three
  /// honor the determinism contract: same merges/records/bytes at every
  /// thread count (selection state only ever advances at the serial
  /// commit stage).
  SelectionStrategy Selection = SelectionStrategy::Distance;
  /// Worker threads for the attempt stage (see MergePipeline). 1 (the
  /// default) runs the legacy serial driver bit-identically; 0 resolves
  /// to the hardware concurrency. Any value produces identical merges,
  /// records and final modules — threads only change wall-clock time.
  unsigned NumThreads = 1;
  /// Pool entries ranked per optimistic round when NumThreads > 1
  /// (bounds speculative memory and staleness). 0 picks
  /// max(32, 8 x threads). Ignored in the serial path.
  unsigned CommitWindow = 0;
  /// A/B guard for the cross-module machinery: when true,
  /// runFunctionMerging routes through a CrossModuleMerger session with
  /// this one module registered. The contract — enforced by
  /// tests/cross_module_test.cpp — is that the result is bit-identical
  /// to the direct path (same merges, records, names, module bytes), so
  /// any divergence the cross-module generalization ever introduces
  /// into the single-module driver is caught immediately.
  bool CrossModule = false;
  /// Parallel sharding of a whole-program session (ShardedSessionRunner):
  /// the pool's merge-compatibility classes (per-return-type partitions —
  /// provably independent, since cross-type pairs rank at +inf) are
  /// packed onto this many shards, each run as an independent serial
  /// pipeline on the worker pool, then spliced back serially with the
  /// unsharded session's exact record order and name allocation.
  ///   1 (default)  unsharded (the plain CrossModuleMerger pipeline);
  ///   0            auto: min(resolved NumThreads, live classes);
  ///   N > 1        clamped to the number of live classes.
  /// The sharded result is bit-identical to the unsharded session at
  /// every shard x thread count in *every* selection mode
  /// (sharded_session_test pins it): the profit-guided modes calibrate
  /// their ProfitModel — and drive the adaptive threshold — per
  /// merge-compatibility class, and a class's serial observation
  /// sequence is the same whether its pipeline runs unsharded or inside
  /// any shard plan (cross-class pairs never rank, so classes never
  /// exchange observations). This shard-invariance is also what lets
  /// one DecisionCachePath warm sessions at any shard count.
  unsigned ShardCount = 1;
  /// Host-module selection for whole-program sessions when the caller
  /// does not pick one explicitly (see HostPolicy, MergeOptions.h):
  /// First (default) takes the first registered module, Biggest the
  /// most instructions, Hottest the best merge-candidate density.
  /// MergeServiceOptions::ReelectHost re-runs this election per epoch;
  /// under First it can never move, so re-election is a no-op there.
  HostPolicy Host = HostPolicy::First;
  /// Per-attempt resource caps (see AttemptBudget, MergeOptions.h). All
  /// caps default to 0 = unlimited: the zero-budget path is bit-identical
  /// to the uncapped driver. Capped-out attempts become budget-rejected
  /// records (Stats.BudgetRejects) and the session continues.
  AttemptBudget Budget;
  /// Degradation ladder: a pool entry whose attempts fail (fault, budget
  /// reject, or verifier reject) this many times is quarantined —
  /// retired from the candidate pool/index without being merged, counted
  /// in Stats.QuarantinedFunctions — so a function that poisons every
  /// attempt cannot keep burning attempt time for the rest of the
  /// session. Both sides of a failed attempt accrue a strike. 0 disables
  /// quarantine. The default of 3 is invisible on healthy runs: an
  /// attempt on a fault-free, budget-free session never fails.
  unsigned QuarantineThreshold = 3;
  /// Deterministic fault injection (tests/soaks only; see
  /// support/FaultInjection.h). Disarmed by default; when disarmed here,
  /// the pipeline falls back to the SALSSA_FAULTS environment spec, so a
  /// stock binary can be soaked without a rebuild.
  FaultInjectionConfig Faults;
  /// Exact structural-hash pre-clustering (merge/StructuralHash.h):
  /// before pairwise ranking runs, hash-identical function groups are
  /// committed as one merged body + direct thunks, with zero
  /// CandidateIndex queries and zero alignment work. Off by default —
  /// the default pipeline stays bit-identical to the pre-fast-path
  /// driver. With clustering on, final reduction can only improve
  /// (cluster bodies skip fid-dispatch overhead) and the clustered
  /// session remains deterministic at every thread and shard count.
  bool HashClustering = false;
  /// Canonical shadow view for candidate discovery
  /// (transforms/Canonicalize.h): fingerprints and structural hashes are
  /// computed from a normalized scratch clone (commutative ordering,
  /// reassociation, value numbering, dead-store/dead-code sweep) instead
  /// of the raw body, so semantically-equal-but-syntactically-divergent
  /// functions rank close and merge. Original bodies are never touched —
  /// codegen, thunks and behaviour are unaffected; only *which* pairs
  /// are discovered changes. Off by default: the raw pipeline stays
  /// bit-identical to the pre-canonicalization driver. Folded into the
  /// DecisionCache options fingerprint (canonical and raw hashes name
  /// different key spaces, so a stale cache self-invalidates). Note:
  /// HashClustering's exact-identity pre-pass deliberately keeps hashing
  /// raw bodies — clustering commits one body for the whole group, which
  /// is only sound for *identical* functions, not canonical-equal ones.
  bool Canonicalize = false;
  /// Path of the persistent cross-run decision cache
  /// (merge/DecisionCache.h). Empty (default) disables the cache; the
  /// first run over a pool writes decisions, subsequent runs replay
  /// them — skipping ranking and alignment for unchanged entries — and
  /// re-record anything that no longer resolves. Invalid/corrupt files
  /// self-invalidate (Stats.CacheLoadRejected) and the run proceeds
  /// cold. Sharded sessions share this one cache (serial-commit-stage
  /// writes only). Interactions: the cache key embeds an options
  /// fingerprint (Arch, Selection, Canonicalize, ... — see
  /// DecisionCache.h), so flipping Canonicalize or the size-model
  /// target self-invalidates stale entries rather than replaying wrong
  /// decisions; MergeService honours the cache on full session builds
  /// only, never on incremental deltas. Not designed to compose with
  /// armed fault injection: replayed entries skip the fault points
  /// they would have hit.
  std::string DecisionCachePath;
};

/// One committed/attempted merge record (drives Fig 19/21/22/23).
struct MergeRecord {
  std::string Name1;
  std::string Name2;
  MergeAttemptStats Stats;
  bool Committed = false;
};

/// Aggregate results of one pass execution.
///
/// Threading semantics of the timing fields: AlignmentSeconds and
/// CodeGenSeconds are *CPU* seconds, accumulated per worker (each worker
/// owns its accumulator; the pipeline sums them in worker order at join,
/// then adds the driver thread's inline attempts). With NumThreads == 1
/// they degenerate to the historical serial accounting; with threads
/// they can legitimately exceed TotalSeconds (overlapping workers) and
/// include speculative work later discarded at commit. Summing raw
/// wall-clock intervals from one global clock would instead double-count
/// overlapped work — that is the accounting bug this scheme replaces.
/// RankingSeconds stays a driver-thread wall time (ranking is serial by
/// design; in parallel runs it includes both the snapshot ranking and
/// the commit-time re-validation). TotalSeconds is whole-pass wall time.
struct MergeDriverStats {
  unsigned Attempts = 0;         ///< serial-order attempts (see Records)
  unsigned ProfitableMerges = 0; ///< the Fig 21 metric
  unsigned CommittedMerges = 0;
  /// Committed merges whose inputs lived in different modules. Always 0
  /// for single-module runs; cross-module sessions (CrossModuleMerger)
  /// use it to report how much of the win the module boundary was hiding.
  unsigned CrossModuleMerges = 0;
  double AlignmentSeconds = 0; ///< CPU s, per-worker accumulators summed
  double CodeGenSeconds = 0;   ///< CPU s, per-worker accumulators summed
  double RankingSeconds = 0;   ///< pairing phase only (candidate ranking)
  double TotalSeconds = 0;     ///< whole-pass wall time (Fig 24 numerator)
  size_t PeakAlignmentBytes = 0; ///< Fig 22 metric
  /// One record per serial-order attempt, identical across every
  /// NumThreads value (speculative attempts discarded at commit are
  /// intentionally not recorded — they have no serial counterpart).
  std::vector<MergeRecord> Records;

  // Pipeline instrumentation. NumThreadsUsed is 1 in the serial path
  // (including the tiny-pool fallback); the counters below it are only
  // ever non-zero when the optimistic parallel path ran.
  unsigned NumThreadsUsed = 1; ///< resolved worker count
  unsigned SpeculativeAttempts = 0; ///< attempts executed by workers
  unsigned SpeculativeDiscarded = 0; ///< speculative attempts thrown away
  unsigned InlineReattempts = 0; ///< commit-stage re-runs after conflicts
  /// Entries that speculated and whose snapshot ranking staled by commit
  /// time. Entries the pipeline chose NOT to speculate for (their top
  /// candidate was already claimed earlier in the window) are counted in
  /// SpeculationsSkipped instead — keeping the two apart is what gives
  /// the adaptive commit window an unpolluted staleness signal (a
  /// skipped entry is a *predicted* conflict, not an observed one).
  unsigned CommitConflicts = 0;
  unsigned SpeculationsSkipped = 0; ///< window entries not speculated
  double AttemptStageSeconds = 0; ///< wall time of parallel attempt stages

  // Failure containment (the attempt guard / commit firewall /
  // quarantine ladder; see "Failure containment & fault injection" in
  // src/merge/README.md). The first four are authoritative and counted
  // only at the serial commit stage, in record order — identical at
  // every thread and shard count, like Records:
  unsigned AttemptFailures = 0; ///< attempts aborted by an exception
  unsigned BudgetRejects = 0;   ///< attempts rejected by AttemptBudget caps
  unsigned VerifierRejects = 0; ///< would-be winners the firewall rolled back
  unsigned QuarantinedFunctions = 0; ///< pool entries retired by the ladder
  // The two below are parallel-only wastage counters (0 in serial runs,
  // like SpeculativeAttempts — speculative failures are re-observed and
  // re-counted authoritatively when the commit stage re-runs the pair):
  unsigned SpeculativeFailures = 0; ///< worker-side attempt guard catches
  unsigned TaskFailures = 0; ///< whole worker tasks recovered (per-task guard)

  // Selection instrumentation (SelectionStrategy::Adaptive; for the
  // other modes both fields echo Options.ExplorationThreshold). The
  // adaptive t evolves only at the serial commit stage, so these are
  // identical at every thread count.
  unsigned AdaptiveThresholdMax = 0;   ///< peak exploration threshold
  unsigned AdaptiveThresholdFinal = 0; ///< threshold after the last entry

  // Sharded-session instrumentation (ShardedSessionRunner; both keep
  // their defaults on unsharded runs). ShardCount is the *effective*
  // shard count after clamping to the number of live compatibility
  // classes. ShardImbalance is max shard weight / mean shard weight
  // under the balancer's alignment-cost proxy (Σ size² per class), 1.0 =
  // perfectly balanced, 0 when the pool was empty — the number to watch
  // when sharded wall-clock stops tracking 1/ShardCount.
  unsigned ShardCount = 1;
  double ShardImbalance = 1.0;

  // Pairing-work counters (RankingStrategy::CandidateIndex only; 0 for
  // brute force). Deterministic — unlike RankingSeconds — so regression
  // guards can compare pairing *work* across selection modes without
  // wall-clock noise: the bounded-extension contract is precisely that
  // profit-guided slates do not widen the walk (bench_selection
  // enforces the ratio).
  uint64_t PairingDistanceCalls = 0; ///< exact distance evaluations
  uint64_t PairingProbes = 0; ///< LSH seed probes + size-bucket steps

  // Structural-hash fast path + decision cache (both 0 unless the
  // corresponding MergeDriverOptions knob is on). All counted serially
  // (pre-cluster pass / serial commit stage), so they are identical at
  // every thread and shard count.
  uint64_t HashClusterCommits = 0; ///< identical-function groups committed
  uint64_t CacheHits = 0;   ///< pool entries replayed from the cache
  uint64_t CacheMisses = 0; ///< cache-enabled entries that ran live
  uint64_t CacheSkips = 0;  ///< cached non-winner attempts skipped outright
  uint64_t CacheLoadRejected = 0; ///< cache files refused at load
  uint64_t FingerprintFaults = 0; ///< functions skipped by Fingerprint faults
};

/// Runs function merging over \p M, mutating it in place.
MergeDriverStats runFunctionMerging(Module &M,
                                    const MergeDriverOptions &Options);

/// Runs only FMSA's preprocessing over \p M without merging anything —
/// the "FMSA Residue" series of Fig 18.
void runFMSAResidueOnly(Module &M);

} // namespace salssa

#endif // SALSSA_MERGE_MERGEDRIVER_H
