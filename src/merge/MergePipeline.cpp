//===- merge/MergePipeline.cpp - Staged, shardable merge driver ---------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "merge/MergePipeline.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "support/Chrono.h"
#include "support/ThreadPool.h"
#include "transforms/Canonicalize.h"
#include <algorithm>
#include <atomic>
#include <unordered_set>

using namespace salssa;

namespace {

/// Brute-force ranking, the paper's scheme verbatim: scan every live
/// pool entry, sort by (distance, pool position), truncate to top-k.
/// Kept bit-compatible with CandidateIndex::query for A/B comparison —
/// including the EstProfit annotation and the bounded extension (up to
/// \p ExtraK continuation entries within the K-th-best distance) when
/// the profit-guided selection modes ask for them, so every selection
/// mode is ranking-strategy-agnostic.
template <typename PoolTy>
std::vector<CandidateIndex::Hit>
bruteForceRank(const PoolTy &Pool, size_t I, unsigned K,
               const ProfitModel *Model = nullptr, unsigned ExtraK = 0) {
  std::vector<CandidateIndex::Hit> Candidates;
  for (size_t J = 0; J < Pool.size(); ++J) {
    if (J == I || Pool[J].Consumed)
      continue;
    uint64_t D = fingerprintDistance(Pool[I].FP, Pool[J].FP);
    if (D == UINT64_MAX)
      continue; // incompatible return types
    Candidates.push_back({D, static_cast<uint32_t>(J), Pool[J].ModuleId});
  }
  std::stable_sort(Candidates.begin(), Candidates.end(),
                   [](const CandidateIndex::Hit &A,
                      const CandidateIndex::Hit &B) {
                     return A.Distance < B.Distance;
                   });
  if (Candidates.size() > K) {
    uint64_t KthBest = Candidates[K - 1].Distance;
    size_t End = std::min(Candidates.size(), size_t(K) + ExtraK);
    while (End > K && Candidates[End - 1].Distance > KthBest)
      --End;
    Candidates.resize(End);
  }
  if (Model)
    for (CandidateIndex::Hit &H : Candidates)
      H.EstProfit = Model->estimate(Pool[I].FP, Pool[H.Id].FP, H.Distance);
  return Candidates;
}

/// Moves an attempt out of its task slot, leaving the slot inert so
/// discardRemaining cannot double-free the speculative function.
MergeAttempt takeAttempt(MergeAttempt &Slot) {
  MergeAttempt A = Slot;
  Slot = MergeAttempt();
  return A;
}

} // namespace

MergePipeline::MergePipeline(Module &M, const MergeDriverOptions &Options,
                             const std::map<Function *, unsigned> &BaselineSize,
                             MergeDriverStats &Stats)
    : MergePipeline(std::vector<Module *>{&M}, M, Options, BaselineSize,
                    Stats) {}

MergePipeline::MergePipeline(const std::vector<Module *> &Modules,
                             Module &Host, const MergeDriverOptions &Options,
                             const std::map<Function *, unsigned> &BaselineSize,
                             MergeDriverStats &Stats)
    : MergePipeline(Modules, Host, Options, BaselineSize, Stats,
                    PipelineShardScope()) {}

MergePipeline::MergePipeline(const std::vector<Module *> &Modules,
                             Module &Host, const MergeDriverOptions &Options,
                             const std::map<Function *, unsigned> &BaselineSize,
                             MergeDriverStats &Stats,
                             const PipelineShardScope &Scope)
    : Modules(Modules), Host(Host),
      Materialize(Scope.Materialize ? Scope.Materialize : &Host),
      PoolFilter(Scope.PoolFilter), PrecomputedFPs(Scope.Fingerprints),
      Journal(Scope.Journal), Options(Options),
      BaselineSize(BaselineSize), Stats(Stats),
      CGOpts(MergeCodeGenOptions::forTechnique(Options.Technique,
                                               Options.EnablePhiCoalescing)),
      UseIndex(Options.Ranking == RankingStrategy::CandidateIndex) {
  assert(!this->Modules.empty() && "pipeline needs at least one module");
  assert((Materialize == &Host ||
          (std::find(this->Modules.begin(), this->Modules.end(),
                     Materialize) == this->Modules.end() &&
           &Materialize->getContext() == &Host.getContext())) &&
         "a scratch materialization module must be outside the module set "
         "and share the host's Context");
  auto HostIt = std::find(this->Modules.begin(), this->Modules.end(), &Host);
  assert(HostIt != this->Modules.end() && "host must be a registered module");
  HostId = static_cast<uint32_t>(HostIt - this->Modules.begin());
#ifndef NDEBUG
  for (Module *M : this->Modules)
    assert(&M->getContext() == &Host.getContext() &&
           "cross-module merging requires a shared Context");
#endif
  SeedProfit = ProfitModel::forArch(Options.Arch);
  BaseT = std::max(1u, Options.ExplorationThreshold);
  MaxT = BaseT + AdaptiveRange;
  // Warm decisions in, fresh recordings out (both optional, both only
  // ever touched at the serial commit stage). Must be wired before
  // buildPool so the pool entries get their cache keys.
  Cache = Scope.Cache;
  CacheUpdates = Scope.CacheUpdates;
  QuarantineSink = Scope.Quarantined;
  // Failure containment: programmatic arming wins, otherwise a stock
  // binary can be soaked via the SALSSA_FAULTS environment spec. Both
  // pointers stay null on a healthy run so attemptMerge takes its exact
  // pre-containment path (the zero-fault bit-identity invariant).
  Faults = Options.Faults.armed() ? Options.Faults
                                  : FaultInjectionConfig::fromEnv();
  if (Faults.armed())
    FaultsPtr = &Faults;
  if (Options.Budget.any())
    Budget = &Options.Budget;
  buildPool();
}

MergePipeline::~MergePipeline() = default;

//===----------------------------------------------------------------------===//
// Rank stage
//===----------------------------------------------------------------------===//

void MergePipeline::buildPool() {
  // Build the candidate pool over every registered module. Like the
  // paper, merging proceeds from the largest functions to the smallest;
  // the stable sort breaks size ties by (module registration order,
  // creation order), which is what makes a one-module cross-module run
  // replay the single-module driver exactly.
  for (size_t Mi = 0; Mi < Modules.size(); ++Mi) {
    for (Function *F : Modules[Mi]->functions()) {
      // Under a shard scope the filter is the authoritative pool
      // predicate: the runner computed it from mergeable functions
      // before any shard launched, and checking it FIRST keeps this
      // shard from reading a foreign function's body state (its block
      // list) while another shard's commit stage is rewriting it into a
      // thunk — a data race isMergeable() would otherwise introduce.
      if (PoolFilter) {
        if (!PoolFilter->count(F))
          continue; // outside this shard's merge-compatibility classes
      } else if (!F->isMergeable()) {
        continue;
      }
      PoolEntry E;
      E.F = F;
      if (PrecomputedFPs) {
        auto FPIt = PrecomputedFPs->find(F);
        assert(FPIt != PrecomputedFPs->end() &&
               "precomputed fingerprints must cover the filtered pool");
        E.FP = *FPIt->second;
      } else {
        E.FP = fingerprintFor(*F, Options.Canonicalize);
      }
      E.CostSize = BaselineSize.at(F);
      E.ModuleId = static_cast<uint32_t>(Mi);
      Pool.push_back(E);
    }
  }
  std::stable_sort(Pool.begin(), Pool.end(),
                   [](const PoolEntry &A, const PoolEntry &B) {
                     return A.FP.Size > B.FP.Size;
                   });

  // Index every live pool entry by id == pool position. The index is
  // maintained incrementally: committed merges retire their inputs and
  // remerge entries are inserted, so no pool rescan ever happens.
  if (UseIndex)
    for (size_t I = 0; I < Pool.size(); ++I)
      Index.insert(static_cast<uint32_t>(I), Pool[I].FP, Pool[I].ModuleId);

  // Cache keys are assigned in serial pool order — the occurrence index
  // is positional, so this must happen after the sort and must be the
  // same walk a warm run performs (it is: the pool build above is
  // deterministic at every thread and shard count).
  if (Cache || CacheUpdates)
    for (size_t I = 0; I < Pool.size(); ++I)
      assignCacheKey(I);
}

void MergePipeline::assignCacheKey(size_t I) {
  Pool[I].Hash = structuralHashFor(*Pool[I].F, Options.Canonicalize);
  Pool[I].HashOcc = HashOccCounter[Pool[I].Hash]++;
  KeyToPool.emplace(DecisionKey{Pool[I].Hash, Pool[I].HashOcc},
                    static_cast<uint32_t>(I));
}

unsigned MergePipeline::effectiveThreshold(Type *RetTy) const {
  if (Options.Selection != SelectionStrategy::Adaptive)
    return BaseT;
  auto It = Classes.find(RetTy);
  return It == Classes.end() ? BaseT : It->second.CurrentT;
}

MergePipeline::ClassSelectionState &MergePipeline::classState(Type *RetTy) {
  auto It = Classes.find(RetTy);
  if (It == Classes.end()) {
    ClassSelectionState CS;
    CS.Profit = SeedProfit;
    CS.CurrentT = BaseT;
    It = Classes.emplace(RetTy, CS).first;
  }
  return It->second;
}

unsigned MergePipeline::maxThreshold() const {
  unsigned T = BaseT;
  for (const auto &KV : Classes)
    T = std::max(T, KV.second.CurrentT);
  return T;
}

void MergePipeline::tallyVote(ClassSelectionState &CS, bool Shrink,
                              bool Widen) {
  ++CS.RoundEntries;
  if (Shrink)
    ++CS.ShrinkVotes;
  else if (Widen)
    ++CS.WidenVotes;
  if (CS.RoundEntries >= AdaptRoundSize) {
    if (CS.WidenVotes > CS.ShrinkVotes && CS.CurrentT < MaxT)
      ++CS.CurrentT;
    else if (CS.ShrinkVotes > CS.WidenVotes && CS.CurrentT > BaseT)
      --CS.CurrentT;
    Stats.AdaptiveThresholdMax =
        std::max(Stats.AdaptiveThresholdMax, CS.CurrentT);
    CS.RoundEntries = CS.WidenVotes = CS.ShrinkVotes = 0;
  }
}

void MergePipeline::profitRerank(std::vector<CandidateIndex::Hit> &Hits,
                                 uint32_t SelfModule, unsigned T) const {
  // (estimated profit desc, same-module-as-entry first, distance asc,
  // id asc). The same-module preference is the candidate-aware
  // tie-breaker that recovers the cross-module greedy gap: at equal
  // estimated profit a partner from the entry's own module leaves
  // partners in *other* modules unconsumed for their own local
  // near-clones, instead of the global greedy order eating them.
  // "Equal" is judged at the model's resolution, not to the byte: the
  // estimate is a calibrated EMA, so scores are compared in
  // ScoreBucketBytes-wide buckets (floor division, exact for negatives
  // too) — a model this coarse earns trust only for *large* profit
  // gaps, while inside a bucket the same-module preference and then the
  // distance ranking (the signal the paper trusts) decide.
  auto scoreOf = [](const CandidateIndex::Hit &H) {
    int64_t S = H.EstProfit;
    return S >= 0 ? S / ScoreBucketBytes
                  : -((-S + ScoreBucketBytes - 1) / ScoreBucketBytes);
  };
  // The incoming slate is distance-sorted, so Hits[0] is the nearest
  // candidate — the one Distance selection would attempt first. It is
  // guaranteed a seat in the final slate: the estimate is a model, the
  // commit stage decides by *actual* attempt profit, and keeping the
  // distance pick attemptable caps how much a misprediction can cost.
  const CandidateIndex::Hit Nearest = Hits.empty() ? CandidateIndex::Hit{}
                                                   : Hits.front();
  // Plain sort, not stable_sort: the comparator totally orders hits
  // (ids are unique), so the result is deterministic either way, and
  // stable_sort's temporary buffer is a malloc per rank() — measurable
  // on clone-heavy pools where the query itself is a few probes.
  std::sort(Hits.begin(), Hits.end(),
            [&scoreOf, SelfModule](const CandidateIndex::Hit &A,
                                   const CandidateIndex::Hit &B) {
              int64_t SA = scoreOf(A), SB = scoreOf(B);
              if (SA != SB)
                return SA > SB;
              bool SameA = A.ModuleId == SelfModule;
              bool SameB = B.ModuleId == SelfModule;
              if (SameA != SameB)
                return SameA;
              if (A.Distance != B.Distance)
                return A.Distance < B.Distance;
              return A.Id < B.Id;
            });
  if (Hits.size() > T) {
    bool NearestKept = false;
    for (unsigned J = 0; J < T; ++J)
      NearestKept |= Hits[J].Id == Nearest.Id;
    Hits.resize(T);
    if (!NearestKept)
      Hits.back() = Nearest;
  }
}

std::vector<CandidateIndex::Hit> MergePipeline::rank(size_t I) {
  // Both ranking strategies produce the same list; only the cost differs
  // (this is the Stats.RankingSeconds A/B that bench_ranking_scaling
  // measures). The selection mode then decides what the driver does
  // with the distance ranking.
  auto RankT0 = std::chrono::steady_clock::now();
  std::vector<CandidateIndex::Hit> Candidates;
  const unsigned T = effectiveThreshold(Pool[I].FP.RetTy);
  if (Options.Selection == SelectionStrategy::Distance) {
    // The paper's scheme verbatim — bit-identical to the
    // pre-selection-layer driver.
    Candidates = UseIndex
                     ? Index.query(Pool[I].FP, T, static_cast<uint32_t>(I))
                     : bruteForceRank(Pool, I, T);
  } else if (Pool[I].IsRemerge) {
    // Merged functions re-entering the pool sit outside the model's
    // calibration (their fingerprints carry fid-dispatch overhead), so
    // their entries keep the paper's distance ordering.
    Candidates = UseIndex
                     ? Index.query(Pool[I].FP, T, static_cast<uint32_t>(I))
                     : bruteForceRank(Pool, I, T);
  } else {
    // Profit-guided: distance is only a proxy for profit, and the exact
    // top-t by *estimated profit* is not index-computable (overlap does
    // not shrink with the size gap), so widen the distance slate with
    // the bounded extension — continuation candidates within the t-th
    // best distance, recycled from the walk the top-t query pays for
    // anyway — and re-rank the slate by the model.
    ProfitModel &PM = classState(Pool[I].FP.RetTy).Profit;
    Candidates = UseIndex
                     ? Index.query(Pool[I].FP, T, static_cast<uint32_t>(I),
                                   &PM, SlateExtra)
                     : bruteForceRank(Pool, I, T, &PM, SlateExtra);
    profitRerank(Candidates, Pool[I].ModuleId, T);
  }
  Stats.RankingSeconds += secondsSince(RankT0);
  return Candidates;
}

//===----------------------------------------------------------------------===//
// Commit stage
//===----------------------------------------------------------------------===//

void MergePipeline::discardRemaining(AttemptTask &Spec) {
  for (MergeAttempt &A : Spec.Attempts) {
    if (!A.Valid)
      continue;
    discardMerge(A);
    ++Stats.SpeculativeDiscarded;
  }
}

MergeAttempt MergePipeline::guardedAttempt(Function &F1, Function &F2,
                                           unsigned SizeF1, unsigned SizeF2,
                                           Module *Target,
                                           unsigned *Failures,
                                           const AlignmentReplay *Replay) {
  try {
    // Alignments are captured whenever an update sink is attached: any
    // executed attempt — worker-speculative included — may end up the
    // committed winner whose alignment the cache must record.
    return attemptMerge(F1, F2, CGOpts, Options.Arch, SizeF1, SizeF2, Target,
                        Budget, FaultsPtr, Replay,
                        /*CaptureAlignment=*/CacheUpdates != nullptr);
  } catch (const std::exception &) {
    // The attempt guard: one throwing pair (injected, or a real bug in
    // alignment/codegen) becomes a skipped pair, not a dead session.
    // attemptMerge throws before touching the target module or burning a
    // name (the alignment fault point fires first; past it the pipeline
    // is exception-free by construction), so there is nothing to roll
    // back here.
    MergeAttempt A;
    A.F1 = &F1;
    A.F2 = &F2;
    A.Stats.Outcome = AttemptOutcome::Faulted;
    if (Failures)
      ++*Failures;
    return A;
  }
}

bool MergePipeline::quarantineIfStruckOut(size_t I) {
  if (!Options.QuarantineThreshold || Pool[I].Consumed ||
      Pool[I].Failures < Options.QuarantineThreshold)
    return false;
  // The degradation ladder's last rung: this function keeps poisoning
  // attempts — retire it unmerged so the rest of the session stops
  // paying for it. Never reached on a healthy run (attempts there never
  // fail), so the ladder is invisible to the zero-fault contract.
  Pool[I].Consumed = true;
  if (UseIndex)
    Index.retire(static_cast<uint32_t>(I));
  ++Stats.QuarantinedFunctions;
  if (QuarantineSink)
    QuarantineSink->push_back(Pool[I].F);
  return true;
}

void MergePipeline::noteAttemptFailure(size_t EntryIdx, uint32_t PartnerId) {
  if (!Options.QuarantineThreshold)
    return;
  ++Pool[EntryIdx].Failures;
  ++Pool[PartnerId].Failures;
  // The partner is judged immediately; the entry finishes its slate
  // first (commitEntry's epilogue judges it) so one bad partner cannot
  // cost the entry its remaining candidates this round.
  quarantineIfStruckOut(PartnerId);
}

void MergePipeline::commitEntry(size_t I, AttemptTask *Spec) {
  if (Pool[I].Consumed) {
    // Consumed by an earlier commit (serial: as the partner of an
    // earlier entry; parallel: likewise, only discovered after the
    // snapshot attempts already ran).
    if (Spec)
      discardRemaining(*Spec);
    if (Journal)
      Journal->push_back(PipelineEntryTrace());
    return;
  }
  // Quarantine gate: strikes accrued as a partner of earlier entries may
  // already have condemned this one — retire it before paying for its
  // slate. The journal still gets this entry's (empty) slot.
  if (quarantineIfStruckOut(I)) {
    if (Spec)
      discardRemaining(*Spec);
    if (Journal)
      Journal->push_back(PipelineEntryTrace());
    return;
  }
  // Warm fast path: replay the recorded decision when one exists and
  // still resolves against the live pool; otherwise fall through to the
  // live rank/attempt path (and count the miss).
  if (Cache) {
    if (replayFromCache(I, Spec))
      return;
    ++Stats.CacheMisses;
  }
  PipelineEntryTrace Trace;
  Trace.EntryFn = Pool[I].F;
  Function *F1 = Pool[I].F;
  Context &Ctx = Host.getContext();
  ClassSelectionState &CS = classState(Pool[I].FP.RetTy);
  // Live-path recording: an entry is cacheable only when its whole slate
  // ran clean (every attempt completed, nothing verifier-rejected) — a
  // replayed entry must never need the failure-containment ladder.
  bool Recordable = CacheUpdates != nullptr;
  CachedDecision Recorded;

  // Pairing phase: rank the other live candidates by fingerprint
  // distance and keep the top-t. In the parallel path this re-ranks
  // against the *current* pool — the optimistic conflict rule: only
  // candidates still in this authoritative list may reuse their
  // speculative attempt (both inputs then provably unchanged since the
  // snapshot), everything else is redone inline.
  std::vector<CandidateIndex::Hit> Candidates = rank(I);
  if (Spec && !std::equal(Candidates.begin(), Candidates.end(),
                          Spec->Hits.begin(), Spec->Hits.end(),
                          [](const CandidateIndex::Hit &A,
                             const CandidateIndex::Hit &B) {
                            return A.Id == B.Id && A.Distance == B.Distance;
                          }))
    ++Stats.CommitConflicts;

  // Try the top-t candidates; keep the most profitable attempt. This
  // replays the serial driver exactly: same attempt order, same record
  // order, and — via the explicit makeUniqueName burn for reused
  // speculative attempts — the same unique-name sequence the serial
  // code generator would have produced.
  MergeAttempt Best;
  size_t BestIdx = 0;
  size_t BestRecord = 0;
  size_t BestSlate = 0; // Best's position in the selection slate
  std::string BestName; // non-empty iff Best is a staged (reused) attempt
  const bool ProfitGuided = Options.Selection != SelectionStrategy::Distance;
  for (size_t Slate = 0; Slate < Candidates.size(); ++Slate) {
    const CandidateIndex::Hit &R = Candidates[Slate];
    Function *F2 = Pool[R.Id].F;
    MergeAttempt A;
    std::string StagedName;
    int SpecSlot = -1;
    if (Spec)
      for (size_t S = 0; S < Spec->Hits.size(); ++S)
        if (Spec->Hits[S].Id == R.Id && Spec->Attempts[S].Valid) {
          SpecSlot = static_cast<int>(S);
          break;
        }
    if (SpecSlot >= 0) {
      A = takeAttempt(Spec->Attempts[static_cast<size_t>(SpecSlot)]);
      // Replay the name id the serial generator would have consumed for
      // this attempt; the winner is adopted under it below.
      StagedName = Materialize->makeUniqueName(F1->getName() + ".m");
    } else {
      // Inline attempts generate directly into the materialization
      // module — normally the host (for a single registered module that
      // is F1's own module: the legacy behaviour, same name-counter burn
      // per attempt; for a cross-module run it is where the winner must
      // end up anyway), the shard scratch host under a shard scope.
      // Guarded: a faulted pair faults here exactly as it would have on
      // the speculative path (decisions are keyed by names), so the
      // serial record stream is thread-count-invariant even under
      // injected faults.
      A = guardedAttempt(*F1, *F2, Pool[I].CostSize, Pool[R.Id].CostSize,
                         Materialize, /*Failures=*/nullptr);
      // Driver-thread accumulator (workers own theirs; see
      // MergeDriverStats).
      Stats.AlignmentSeconds += A.Stats.AlignmentSeconds;
      Stats.CodeGenSeconds += A.Stats.CodeGenSeconds;
      if (Spec)
        ++Stats.InlineReattempts;
    }
    ++Stats.Attempts;
    Trace.Partners.push_back(F2);
    Stats.PeakAlignmentBytes =
        std::max(Stats.PeakAlignmentBytes, A.Stats.AlignmentBytes);
    MergeRecord Rec;
    Rec.Name1 = F1->getName();
    Rec.Name2 = F2->getName();
    Rec.Stats = A.Stats;
    size_t RecIdx = Stats.Records.size();
    Stats.Records.push_back(Rec);
    // Authoritative containment accounting, from serial-order record
    // outcomes only — identical at every thread count, like Records.
    // Guard catches and budget rejects both strike the quarantine
    // ladder (so do firewall rejects, below).
    if (A.Stats.Outcome == AttemptOutcome::Faulted) {
      ++Stats.AttemptFailures;
      noteAttemptFailure(I, R.Id);
    } else if (A.Stats.Outcome == AttemptOutcome::BudgetAlignment ||
               A.Stats.Outcome == AttemptOutcome::BudgetBody) {
      ++Stats.BudgetRejects;
      noteAttemptFailure(I, R.Id);
    }
    if (Recordable) {
      if (A.Stats.Outcome != AttemptOutcome::Completed) {
        Recordable = false;
      } else {
        CachedAttempt CA;
        CA.Partner = DecisionKey{Pool[R.Id].Hash, Pool[R.Id].HashOcc};
        CA.Distance = R.Distance;
        CA.ProfitObs = A.profit();
        CA.Profitable = A.Stats.Profitable;
        Recorded.Attempts.push_back(std::move(CA));
      }
    }
    if (!A.Valid)
      continue;
    // Online calibration: every executed attempt reveals its actual
    // profit; fold it into the model. Serial commit order (records are
    // identical at every thread count) keeps the model — and every
    // ranking derived from it — deterministic.
    if (ProfitGuided)
      CS.Profit.observe(ProfitModel::overlap(Pool[I].FP, Pool[R.Id].FP,
                                             R.Distance),
                        R.Distance, A.profit());
    if (A.Stats.Profitable)
      ++Stats.ProfitableMerges;
    if (A.Stats.Profitable && (!Best.Valid || A.profit() > Best.profit())) {
      // The always-on commit firewall: no merged body replaces Best —
      // hence none can ever be committed — without passing ir/Verifier
      // here at the serial commit stage. A reject is rolled back
      // (discarded, never adopted) and the loop falls through to the
      // next candidate, or to no-merge. Only would-be winners are
      // verified, so the healthy-path cost is one verification per
      // improvement, not per attempt.
      VerifierReport Firewall = verifyFunction(*A.Gen.Merged);
      if (!Firewall.ok()) {
        ++Stats.VerifierRejects;
        Stats.Records[RecIdx].Stats.VerifierRejected = true;
        noteAttemptFailure(I, R.Id);
        discardMerge(A);
        Recordable = false;
        continue;
      }
      if (Best.Valid)
        discardMerge(Best);
      Best = A;
      BestIdx = R.Id;
      BestRecord = RecIdx;
      BestSlate = Slate;
      BestName = StagedName;
    } else {
      discardMerge(A);
    }
  }
  if (Spec)
    discardRemaining(*Spec);

  // Adaptive exploration: widen t when profit keeps showing up at the
  // tail of a full slate (exploration is paying), shrink it back toward
  // the base when the top pick wins or the entry comes up dry (it is
  // not). A top-pick win always votes shrink — even when it is also the
  // slate tail (slate of one), otherwise t ratchets up exactly on the
  // pools that need no exploration. Entries with an empty slate carry
  // no selection signal and are not tallied — they are also the entries
  // the parallel snapshot loop never routes through commitEntry, so
  // tallying them would make the adaptive trajectory (hence attempts
  // and records) thread-count-dependent. Votes are tallied over
  // AdaptRoundSize entries so a single outlier cannot thrash t; the
  // range is clamped to [BaseT, MaxT], which is the convergence bound
  // selection_test pins.
  if (Options.Selection == SelectionStrategy::Adaptive &&
      !Candidates.empty()) {
    bool Shrink = !Best.Valid || BestSlate == 0;
    bool Widen = !Shrink && Candidates.size() >= CS.CurrentT &&
                 BestSlate + 1 == Candidates.size();
    if (Recordable) {
      Recorded.VoteTallied = true;
      Recorded.VoteShrink = Shrink;
      Recorded.VoteWiden = Widen;
    }
    tallyVote(CS, Shrink, Widen);
  }

  // Recording epilogue: the slate ran clean — persist the decision
  // (committed, dry, or ranked-empty alike; warm runs save the pairing
  // work either way). The winner additionally carries its alignment so
  // replay can regenerate the identical body with zero aligner work.
  if (Recordable) {
    if (Best.Valid) {
      Recorded.Winner = static_cast<int32_t>(BestSlate);
      CachedAttempt &W = Recorded.Attempts[BestSlate];
      W.SeqLen1 = static_cast<uint32_t>(Best.Stats.SeqLen1);
      W.SeqLen2 = static_cast<uint32_t>(Best.Stats.SeqLen2);
      W.Align = Best.AlignEntries;
    }
    CacheUpdates->push_back(
        {DecisionKey{Pool[I].Hash, Pool[I].HashOcc}, std::move(Recorded)});
  }

  if (!Best.Valid) {
    // Quarantine epilogue: the slate is complete — if this entry's
    // failures (on either side of its pairs, this round or earlier)
    // struck it out and nothing committed, retire it now instead of
    // re-ranking it as everyone else's partner forever.
    quarantineIfStruckOut(I);
    if (Journal)
      Journal->push_back(std::move(Trace));
    return;
  }

  // Commit: thunk both inputs (each in its own module), retire them from
  // the pool, and offer the merged function — which lives in the
  // materialization module — for further merging.
  if (!BestName.empty())
    adoptMergedFunction(Best, *Materialize, BestName);
  commitMerge(Best, Ctx);
  ++Stats.CommittedMerges;
  if (Pool[I].ModuleId != Pool[BestIdx].ModuleId)
    ++Stats.CrossModuleMerges;
  // Mark the exact attempt that won by record index: name matching
  // could flag the wrong record when the same pair is re-attempted
  // across pool iterations.
  Stats.Records[BestRecord].Committed = true;
  if (Journal) {
    Trace.WinnerRecord = static_cast<int32_t>(BestSlate);
    Trace.Merged = Best.Gen.Merged;
  }
  Pool[I].Consumed = true;
  Pool[BestIdx].Consumed = true;
  if (UseIndex) {
    Index.retire(static_cast<uint32_t>(I));
    Index.retire(static_cast<uint32_t>(BestIdx));
  }
  if (Options.AllowRemerge) {
    PoolEntry E;
    E.F = Best.Gen.Merged;
    E.FP = fingerprintFor(*E.F, Options.Canonicalize);
    E.CostSize = estimateFunctionSize(*E.F, Options.Arch);
    E.ModuleId = HostId;
    E.IsRemerge = true;
    Pool.push_back(E);
    if (UseIndex)
      Index.insert(static_cast<uint32_t>(Pool.size() - 1), Pool.back().FP,
                   HostId);
    if (Cache || CacheUpdates)
      assignCacheKey(Pool.size() - 1);
  }
  if (Journal)
    Journal->push_back(std::move(Trace));
}

bool MergePipeline::replayFromCache(size_t I, AttemptTask *Spec) {
  const CachedDecision *D = Cache->lookup({Pool[I].Hash, Pool[I].HashOcc});
  if (!D)
    return false;
  // Resolve every recorded partner against the live pool up front: the
  // replay is all-or-nothing, so a half-resolved decision (changed code,
  // or an earlier miss that perturbed the pool) costs nothing and the
  // entry re-runs — and re-records — live.
  std::vector<uint32_t> Partner(D->Attempts.size());
  for (size_t A = 0; A < D->Attempts.size(); ++A) {
    auto It = KeyToPool.find(D->Attempts[A].Partner);
    if (It == KeyToPool.end() || It->second == I || Pool[It->second].Consumed)
      return false;
    Partner[A] = It->second;
  }
  if (D->Winner >= 0 && static_cast<size_t>(D->Winner) >= D->Attempts.size())
    return false; // defensive: load() range-checks, but stay safe
  if (Spec)
    discardRemaining(*Spec);

  PipelineEntryTrace Trace;
  Trace.EntryFn = Pool[I].F;
  Function *F1 = Pool[I].F;
  Context &Ctx = Host.getContext();
  ClassSelectionState &CS = classState(Pool[I].FP.RetTy);
  const bool ProfitGuided = Options.Selection != SelectionStrategy::Distance;

  MergeAttempt Best;
  uint32_t BestIdx = 0;
  size_t BestRecord = 0;
  for (size_t A = 0; A < D->Attempts.size(); ++A) {
    const CachedAttempt &CA = D->Attempts[A];
    Function *F2 = Pool[Partner[A]].F;
    Trace.Partners.push_back(F2);
    MergeRecord Rec;
    Rec.Name1 = F1->getName();
    Rec.Name2 = F2->getName();
    if (D->Winner != static_cast<int32_t>(A)) {
      // Skipped non-winner: no pipeline runs, but the unique name its
      // cold-run code generation burned is burned anyway — the counter
      // must stay in lockstep for byte-identical modules downstream.
      Materialize->makeUniqueName(F1->getName() + ".m");
      Rec.Stats.Outcome = AttemptOutcome::CacheSkipped;
      Rec.Stats.SizeF1 = Pool[I].CostSize;
      Rec.Stats.SizeF2 = Pool[Partner[A]].CostSize;
      Rec.Stats.Profitable = CA.Profitable;
      if (CA.Profitable)
        ++Stats.ProfitableMerges;
      Stats.Records.push_back(Rec);
      ++Stats.CacheSkips;
      // Replay the calibration the cold run's executed attempt fed the
      // model, so live-ranked (miss) entries downstream see the same
      // estimates.
      if (ProfitGuided)
        CS.Profit.observe(ProfitModel::overlap(Pool[I].FP,
                                               Pool[Partner[A]].FP,
                                               CA.Distance),
                          CA.Distance, static_cast<int>(CA.ProfitObs));
      continue;
    }
    // The winner: run the real pipeline with the recorded alignment —
    // the cache is a shortcut, not an authority, so the replay payload
    // is validated inside attemptMerge (silent fallback to the live
    // aligner) and the commit firewall below stays on.
    AlignmentReplay AR;
    AR.SeqLen1 = CA.SeqLen1;
    AR.SeqLen2 = CA.SeqLen2;
    AR.Entries = &CA.Align;
    MergeAttempt W = guardedAttempt(*F1, *F2, Pool[I].CostSize,
                                    Pool[Partner[A]].CostSize, Materialize,
                                    /*Failures=*/nullptr, &AR);
    Stats.AlignmentSeconds += W.Stats.AlignmentSeconds;
    Stats.CodeGenSeconds += W.Stats.CodeGenSeconds;
    ++Stats.Attempts;
    Stats.PeakAlignmentBytes =
        std::max(Stats.PeakAlignmentBytes, W.Stats.AlignmentBytes);
    Rec.Stats = W.Stats;
    size_t RecIdx = Stats.Records.size();
    Stats.Records.push_back(Rec);
    if (ProfitGuided && W.Valid)
      CS.Profit.observe(ProfitModel::overlap(Pool[I].FP, Pool[Partner[A]].FP,
                                             CA.Distance),
                        CA.Distance, W.profit());
    if (W.Stats.Profitable)
      ++Stats.ProfitableMerges;
    if (W.Valid && W.Stats.Profitable) {
      VerifierReport Firewall = verifyFunction(*W.Gen.Merged);
      if (!Firewall.ok()) {
        ++Stats.VerifierRejects;
        Stats.Records[RecIdx].Stats.VerifierRejected = true;
        discardMerge(W);
      } else {
        Best = W;
        BestIdx = Partner[A];
        BestRecord = RecIdx;
        Trace.WinnerRecord = static_cast<int32_t>(A);
      }
    } else if (W.Valid) {
      discardMerge(W);
    }
  }

  // Replay the recorded adaptive vote so the per-class threshold
  // trajectory matches the cold run for every entry that still ranks
  // live.
  if (Options.Selection == SelectionStrategy::Adaptive && D->VoteTallied)
    tallyVote(CS, D->VoteShrink, D->VoteWiden);

  ++Stats.CacheHits;

  if (!Best.Valid) {
    if (Journal)
      Journal->push_back(std::move(Trace));
    return true;
  }

  // Commit tail, verbatim from the live path (inline attempts generate
  // directly into Materialize, so no adoption step is needed).
  commitMerge(Best, Ctx);
  ++Stats.CommittedMerges;
  if (Pool[I].ModuleId != Pool[BestIdx].ModuleId)
    ++Stats.CrossModuleMerges;
  Stats.Records[BestRecord].Committed = true;
  Trace.Merged = Best.Gen.Merged;
  Pool[I].Consumed = true;
  Pool[BestIdx].Consumed = true;
  if (UseIndex) {
    Index.retire(static_cast<uint32_t>(I));
    Index.retire(BestIdx);
  }
  if (Options.AllowRemerge) {
    PoolEntry E;
    E.F = Best.Gen.Merged;
    E.FP = fingerprintFor(*E.F, Options.Canonicalize);
    E.CostSize = estimateFunctionSize(*E.F, Options.Arch);
    E.ModuleId = HostId;
    E.IsRemerge = true;
    Pool.push_back(E);
    if (UseIndex)
      Index.insert(static_cast<uint32_t>(Pool.size() - 1), Pool.back().FP,
                   HostId);
    assignCacheKey(Pool.size() - 1);
  }
  if (Journal)
    Journal->push_back(std::move(Trace));
  return true;
}

//===----------------------------------------------------------------------===//
// Orchestration
//===----------------------------------------------------------------------===//

void MergePipeline::runSerial() {
  // The legacy driver loop: every stage inline, in pool order.
  // Iterating by index: committed merges append the merged function to
  // the pool so it can merge again.
  for (size_t I = 0; I < Pool.size(); ++I)
    commitEntry(I, nullptr);
}

void MergePipeline::runParallel(unsigned NumThreads) {
  ThreadPool Workers(NumThreads);
  std::vector<WorkerState> State(Workers.numThreads());
  for (size_t W = 0; W < State.size(); ++W) {
    State[W].Staging = std::make_unique<Module>(
        Host.getName() + ".staging" + std::to_string(W), Host.getContext());
    State[W].Staging->setStaging(true);
  }

  const size_t DefaultWindow = Options.CommitWindow
                                   ? Options.CommitWindow
                                   : std::max<size_t>(32, 8 * Workers.numThreads());
  // SelectionStrategy::Adaptive sizes the window from the observed
  // per-round staleness (conflicts + predicted conflicts): high
  // staleness means snapshots rot before commit — shrink; low staleness
  // means barriers dominate — grow. The window NEVER changes outcomes
  // (pipeline_test pins that), only speculation waste, so adapting it is
  // outcome-neutral by construction. An explicit CommitWindow pins it.
  const bool AdaptWindow = Options.Selection == SelectionStrategy::Adaptive &&
                           Options.CommitWindow == 0;
  const size_t MinWindow = std::max<size_t>(8, Workers.numThreads());
  const size_t MaxWindow = DefaultWindow * 4;
  size_t Window = DefaultWindow;
  const bool ProfitGuided = Options.Selection != SelectionStrategy::Distance;

  size_t Cursor = 0;
  while (Cursor < Pool.size()) {
    size_t End = std::min(Pool.size(), Cursor + Window);
    const unsigned ConflictsBefore =
        Stats.CommitConflicts + Stats.SpeculationsSkipped;

    // Rank stage: snapshot the top-t list of every live entry in the
    // window against the current pool. The profit-guided modes predict
    // commit conflicts while snapshotting: once an earlier entry in the
    // window has claimed a candidate as its top pick (the pair an
    // earlier serial commit will most likely consume), any later entry
    // whose own top pick is already claimed skips speculation — its
    // attempt would very likely be thrown away at commit — and runs
    // inline at the commit stage instead, exactly like the serial path.
    std::vector<AttemptTask> Tasks;
    std::unordered_set<uint32_t> Claimed;
    // Partners an earlier cache replay in this window is recorded to
    // consume. They have no cached decision of their own (the cold run
    // consumed them before their turn, so they never reached
    // commitEntry), which means the lookup below cannot recognise them;
    // without this set a warm run would rank and speculate them at full
    // cost only to discard everything at commit.
    std::unordered_set<uint32_t> ReplayConsumes;
    for (size_t I = Cursor; I < End; ++I) {
      if (Pool[I].Consumed)
        continue;
      // Entries with a cached decision never rank or speculate: an
      // empty, non-speculative task routes them through commitEntry
      // (which replays them — or, if the recorded partners no longer
      // resolve by commit time, re-runs them inline exactly like the
      // serial path). The recorded winner marks its partner as
      // replay-consumed, and additionally feeds the profit-guided
      // conflict predictor for the rest of the window.
      if (Cache) {
        const CachedDecision *D =
            Cache->lookup({Pool[I].Hash, Pool[I].HashOcc});
        if (D) {
          AttemptTask T;
          T.PoolIdx = static_cast<uint32_t>(I);
          T.Speculate = false;
          if (D->Winner >= 0) {
            auto It = KeyToPool.find(
                D->Attempts[static_cast<size_t>(D->Winner)].Partner);
            if (It != KeyToPool.end()) {
              ReplayConsumes.insert(It->second);
              if (ProfitGuided) {
                Claimed.insert(T.PoolIdx);
                Claimed.insert(It->second);
              }
            }
          }
          Tasks.push_back(std::move(T));
          continue;
        }
        if (ReplayConsumes.count(static_cast<uint32_t>(I))) {
          // Recorded as a winning partner of an earlier replay in this
          // window: it will be consumed before its own turn comes up, so
          // snapshot ranking would be pure waste. The empty inline task
          // keeps the serial fallback intact — if the predicting replay
          // failed after all, commitEntry runs this entry live (and
          // counts the miss) exactly like the serial path.
          AttemptTask T;
          T.PoolIdx = static_cast<uint32_t>(I);
          T.Speculate = false;
          Tasks.push_back(std::move(T));
          continue;
        }
      }
      AttemptTask T;
      T.PoolIdx = static_cast<uint32_t>(I);
      T.Hits = rank(I);
      if (T.Hits.empty())
        continue;
      if (ProfitGuided) {
        T.Speculate = !Claimed.count(T.PoolIdx) && !Claimed.count(T.Hits[0].Id);
        Claimed.insert(T.PoolIdx);
        Claimed.insert(T.Hits[0].Id);
        if (!T.Speculate)
          ++Stats.SpeculationsSkipped;
      }
      Tasks.push_back(std::move(T));
    }

    // Attempt stage: run every snapshot attempt on the worker pool.
    // Workers only read the pool and the input functions (no commit ran
    // since the snapshot) and build speculative functions in their own
    // staging module; the shared Context interns under a lock.
    if (!Tasks.empty()) {
      auto StageT0 = std::chrono::steady_clock::now();
      std::atomic<size_t> NextTask{0};
      for (size_t W = 0; W < State.size(); ++W) {
        WorkerState &WS = State[W];
        Workers.submit([this, &Tasks, &NextTask, &WS] {
          for (;;) {
            size_t T = NextTask.fetch_add(1, std::memory_order_relaxed);
            if (T >= Tasks.size())
              return;
            AttemptTask &Task = Tasks[T];
            if (!Task.Speculate)
              continue; // predicted conflict: commit will run it inline
            const PoolEntry &E1 = Pool[Task.PoolIdx];
            // Per-task guard: a failure *outside* the per-attempt guard
            // (the TaskFailure fault point models infrastructure dying
            // between attempts) drops the task's partial results and
            // demotes it to the inline path — the commit stage re-runs
            // the entry exactly like the serial driver, so task
            // failures can only ever waste work, never change outcomes.
            try {
              if (FaultsPtr)
                maybeInjectFault(*FaultsPtr, FaultKind::TaskFailure,
                                 E1.F->getName());
              Task.Attempts.reserve(Task.Hits.size());
              for (const CandidateIndex::Hit &R : Task.Hits) {
                const PoolEntry &E2 = Pool[R.Id];
                MergeAttempt A =
                    guardedAttempt(*E1.F, *E2.F, E1.CostSize, E2.CostSize,
                                   WS.Staging.get(), &WS.FailuresRun);
                ++WS.AttemptsRun;
                WS.AlignmentSeconds += A.Stats.AlignmentSeconds;
                WS.CodeGenSeconds += A.Stats.CodeGenSeconds;
                Task.Attempts.push_back(std::move(A));
              }
            } catch (const std::exception &) {
              for (MergeAttempt &A : Task.Attempts)
                if (A.Valid)
                  discardMerge(A);
              Task.Attempts.clear();
              Task.Speculate = false;
              ++WS.TaskFailuresRun;
            }
          }
        });
      }
      Workers.wait();
      Stats.AttemptStageSeconds += secondsSince(StageT0);
    }

    // Commit stage: serial, in pool order, with optimistic
    // re-validation (see commitEntry). Entries that skipped speculation
    // commit exactly like the serial path (no conflict bookkeeping —
    // their staleness was predicted, not observed). Entries the snapshot
    // loop never turned into tasks (already consumed, or silent: no live
    // same-class candidate existed — and none can appear later, see the
    // snapshot loop) still get their empty journal slot so the journal
    // stays 1:1 with serial pool order at every thread count.
    size_t TaskCursor = 0;
    for (size_t I = Cursor; I < End; ++I) {
      if (TaskCursor < Tasks.size() && Tasks[TaskCursor].PoolIdx == I) {
        AttemptTask &T = Tasks[TaskCursor++];
        commitEntry(T.PoolIdx, T.Speculate ? &T : nullptr);
      } else if (Journal) {
        PipelineEntryTrace Trace;
        Trace.EntryFn = Pool[I].Consumed ? nullptr : Pool[I].F;
        Journal->push_back(std::move(Trace));
      }
    }

    Cursor = End;

    if (AdaptWindow && !Tasks.empty()) {
      const unsigned RoundStale =
          Stats.CommitConflicts + Stats.SpeculationsSkipped - ConflictsBefore;
      const double StaleRate = double(RoundStale) / double(Tasks.size());
      if (StaleRate > 0.5)
        Window = std::max(MinWindow, Window / 2);
      else if (StaleRate < 0.125)
        Window = std::min(MaxWindow, Window * 2);
    }
  }

  // Join the per-worker accumulators in worker order. PeakAlignmentBytes
  // is deliberately NOT joined: commitEntry already replays the serial
  // per-attempt max, and folding in discarded speculative attempts would
  // make the Fig 22 metric thread-count-dependent.
  for (const WorkerState &WS : State) {
    Stats.SpeculativeAttempts += WS.AttemptsRun;
    Stats.SpeculativeFailures += WS.FailuresRun;
    Stats.TaskFailures += WS.TaskFailuresRun;
    Stats.AlignmentSeconds += WS.AlignmentSeconds;
    Stats.CodeGenSeconds += WS.CodeGenSeconds;
  }
}

void MergePipeline::run() {
  Stats.AdaptiveThresholdMax = std::max(Stats.AdaptiveThresholdMax, BaseT);
  unsigned NumThreads = ThreadPool::resolveThreadCount(Options.NumThreads);
  if (NumThreads <= 1 || Pool.size() < 2) {
    Stats.NumThreadsUsed = 1; // tiny pools fall back to the serial path
    runSerial();
  } else {
    Stats.NumThreadsUsed = NumThreads;
    runParallel(NumThreads);
  }
  Stats.AdaptiveThresholdFinal = maxThreshold();
  if (UseIndex) {
    Stats.PairingDistanceCalls = Index.stats().DistanceCalls;
    Stats.PairingProbes =
        Index.stats().SeedProbes + Index.stats().ExpansionSteps;
  }
}
