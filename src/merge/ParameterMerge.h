//===- merge/ParameterMerge.h - Merged signature construction ----------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the merged function's signature: a leading i1 function
/// identifier (%fid, true = executing F1) followed by the union of both
/// parameter lists, where parameters of equal type share one slot (greedy,
/// in order) — the scheme inherited from FMSA. Also records, per input
/// function, which merged argument carries each original argument.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_MERGE_PARAMETERMERGE_H
#define SALSSA_MERGE_PARAMETERMERGE_H

#include "ir/Context.h"
#include "ir/Function.h"
#include <vector>

namespace salssa {

/// Result of signature merging.
struct MergedSignature {
  Type *FnTy = nullptr;
  /// Merged-argument index (into the merged function's args, where index 0
  /// is %fid) for each original argument of F1 / F2.
  std::vector<unsigned> ArgIndex1;
  std::vector<unsigned> ArgIndex2;
};

/// Computes the merged signature of \p F1 and \p F2 (their return types
/// must match).
MergedSignature mergeSignatures(const Function &F1, const Function &F2,
                                Context &Ctx);

} // namespace salssa

#endif // SALSSA_MERGE_PARAMETERMERGE_H
