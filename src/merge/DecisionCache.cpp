//===- merge/DecisionCache.cpp - Persistent cross-run decision cache ----------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "merge/DecisionCache.h"
#include "merge/MergeDriver.h"
#include "support/FaultInjection.h"
#include "support/Serialization.h"

namespace salssa {

namespace {

constexpr uint32_t CacheMagic = 0x434c4153; // "SALC" little-endian

uint64_t mixOption(uint64_t H, uint64_t V) {
  H ^= V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  return H;
}

void writeKey(ByteWriter &W, const DecisionKey &K) {
  W.u64(K.Hash.Hi);
  W.u64(K.Hash.Lo);
  W.u32(K.Occ);
}

DecisionKey readKey(ByteReader &R) {
  DecisionKey K;
  K.Hash.Hi = R.u64();
  K.Hash.Lo = R.u64();
  K.Occ = R.u32();
  return K;
}

} // namespace

uint64_t DecisionCache::optionsFingerprint(const MergeDriverOptions &O) {
  uint64_t H = DecisionCache::FormatVersion;
  H = mixOption(H, static_cast<uint64_t>(O.Technique));
  H = mixOption(H, O.EnablePhiCoalescing ? 1 : 0);
  H = mixOption(H, static_cast<uint64_t>(O.Arch));
  H = mixOption(H, static_cast<uint64_t>(O.Ranking));
  H = mixOption(H, static_cast<uint64_t>(O.Selection));
  H = mixOption(H, O.ExplorationThreshold);
  H = mixOption(H, O.AllowRemerge ? 1 : 0);
  H = mixOption(H, static_cast<uint64_t>(O.Host));
  H = mixOption(H, O.HashClustering ? 1 : 0);
  // Canonicalize changes the structural-hash key space itself (canonical
  // shadow hashes vs raw-body hashes): a cache recorded under one value
  // of the flag must read as a counted cold run under the other, never
  // replay against mismatched keys.
  H = mixOption(H, O.Canonicalize ? 1 : 0);
  H = mixOption(H, O.QuarantineThreshold);
  H = mixOption(H, O.Budget.MaxAlignmentCells);
  H = mixOption(H, O.Budget.MaxAttemptSteps);
  H = mixOption(H, O.Budget.MaxMergedBodySize);
  return H;
}

DecisionCache::LoadOutcome
DecisionCache::load(const std::string &Path, uint64_t OptionsFP,
                    const FaultInjectionConfig *Faults) {
  Entries.clear();
  std::vector<uint8_t> Bytes;
  if (!readFileBytes(Path, Bytes))
    return LoadOutcome::Missing;

  try {
    if (Faults)
      maybeInjectFault(*Faults, FaultKind::CacheIO, Path, "load");
  } catch (const std::exception &) {
    return LoadOutcome::Rejected;
  }

  // Header: magic | version | options fingerprint | payload size |
  // payload checksum. Every field gates the load.
  ByteReader Header(Bytes.data(), Bytes.size());
  uint32_t Magic = Header.u32();
  uint32_t Version = Header.u32();
  uint64_t FP = Header.u64();
  uint64_t PayloadSize = Header.u64();
  uint64_t Checksum = Header.u64();
  if (!Header.ok() || Magic != CacheMagic || Version != FormatVersion ||
      FP != OptionsFP || PayloadSize != Header.remaining())
    return LoadOutcome::Rejected;
  const uint8_t *Payload = Bytes.data() + (Bytes.size() - PayloadSize);
  if (fnv1a64(Payload, PayloadSize) != Checksum)
    return LoadOutcome::Rejected;

  ByteReader R(Payload, PayloadSize);
  uint64_t Count = R.u64();
  for (uint64_t I = 0; I < Count && R.ok(); ++I) {
    DecisionKey Key = readKey(R);
    CachedDecision D;
    D.Winner = R.i32();
    uint8_t Flags = R.u8();
    D.VoteTallied = (Flags & 1) != 0;
    D.VoteShrink = (Flags & 2) != 0;
    D.VoteWiden = (Flags & 4) != 0;
    uint32_t NumAttempts = R.u32();
    // An attempt costs at least 30 bytes on disk; a count that cannot
    // fit the remaining payload is corruption, caught before any
    // allocation is sized by attacker-controlled data.
    if (NumAttempts > R.remaining() / 30) {
      Entries.clear();
      return LoadOutcome::Rejected;
    }
    D.Attempts.resize(NumAttempts);
    for (CachedAttempt &A : D.Attempts) {
      A.Partner = readKey(R);
      A.Distance = R.u64();
      A.ProfitObs = R.i64();
      A.Profitable = R.u8() != 0;
      A.SeqLen1 = R.u32();
      A.SeqLen2 = R.u32();
      uint32_t AlignLen = R.u32();
      if (AlignLen > R.remaining() / 8) {
        Entries.clear();
        return LoadOutcome::Rejected;
      }
      A.Align.resize(AlignLen);
      for (auto &E : A.Align) {
        E.first = R.i32();
        E.second = R.i32();
      }
    }
    if (D.Winner < -1 ||
        D.Winner >= static_cast<int32_t>(D.Attempts.size())) {
      Entries.clear();
      return LoadOutcome::Rejected;
    }
    Entries.emplace(Key, std::move(D));
  }
  if (!R.ok() || !R.atEnd() || Entries.size() != Count) {
    Entries.clear();
    return LoadOutcome::Rejected;
  }
  return LoadOutcome::Loaded;
}

bool DecisionCache::save(const std::string &Path, uint64_t OptionsFP,
                         const FaultInjectionConfig *Faults) const {
  try {
    if (Faults)
      maybeInjectFault(*Faults, FaultKind::CacheIO, Path, "save");
  } catch (const std::exception &) {
    return false;
  }

  ByteWriter Payload;
  Payload.u64(Entries.size());
  for (const auto &[Key, D] : Entries) {
    writeKey(Payload, Key);
    Payload.i32(D.Winner);
    Payload.u8(static_cast<uint8_t>((D.VoteTallied ? 1 : 0) |
                                    (D.VoteShrink ? 2 : 0) |
                                    (D.VoteWiden ? 4 : 0)));
    Payload.u32(static_cast<uint32_t>(D.Attempts.size()));
    for (const CachedAttempt &A : D.Attempts) {
      writeKey(Payload, A.Partner);
      Payload.u64(A.Distance);
      Payload.i64(A.ProfitObs);
      Payload.u8(A.Profitable ? 1 : 0);
      Payload.u32(A.SeqLen1);
      Payload.u32(A.SeqLen2);
      Payload.u32(static_cast<uint32_t>(A.Align.size()));
      for (const auto &E : A.Align) {
        Payload.i32(E.first);
        Payload.i32(E.second);
      }
    }
  }

  ByteWriter File;
  File.u32(CacheMagic);
  File.u32(FormatVersion);
  File.u64(OptionsFP);
  File.u64(Payload.size());
  File.u64(fnv1a64(Payload.buffer().data(), Payload.size()));
  std::vector<uint8_t> Bytes = File.buffer();
  Bytes.insert(Bytes.end(), Payload.buffer().begin(), Payload.buffer().end());
  return writeFileBytes(Path, Bytes);
}

void DecisionCache::apply(std::vector<DecisionCacheUpdate> &&Updates) {
  for (DecisionCacheUpdate &U : Updates)
    Entries[U.Key] = std::move(U.Decision);
  Updates.clear();
}

} // namespace salssa
