//===- merge/MergedFunctionGenerator.cpp - SalSSA code generator ---------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "merge/MergedFunctionGenerator.h"
#include "align/Matcher.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "merge/SSARepair.h"
#include "transforms/Cloning.h"
#include "transforms/Mem2Reg.h"
#include "transforms/Simplify.h"
#include <map>
#include <set>

using namespace salssa;

namespace {

/// Builds the merged function for one (F1, F2, alignment) triple.
class Generator {
public:
  Generator(Function &F1, Function &F2, const std::vector<SeqItem> &Seq1,
            const std::vector<SeqItem> &Seq2, const AlignmentResult &Align,
            const MergeCodeGenOptions &Options, const std::string &NameHint,
            Module *TargetModule)
      : F1(F1), F2(F2), Seq1(Seq1), Seq2(Seq2), Align(Align),
        Options(Options), M(TargetModule ? *TargetModule : *F1.getParent()),
        Ctx(M.getContext()), NameHint(NameHint) {}

  GeneratedMerge run() {
    createFunctionShell();
    indexAlignment();
    createSharedBlocks();
    buildSegmentsAndClones(/*FnIdx=*/1);
    buildSegmentsAndClones(/*FnIdx=*/2);
    chainSegments();
    resolveSuccessors();
    materializeLandingBlocks();
    resolveOperands();
    assignPhiIncomings();
    SSARepairStats Repair =
        repairSSA(*Merged, Ctx, Origin, Options.EnablePhiCoalescing);
    Result.RepairSlots = Repair.SlotsCreated;
    Result.CoalescedPairs = Repair.CoalescedPairs;
    // Post-repair verification is no longer a debug-only stderr print:
    // the always-on commit firewall (MergePipeline::commitEntry) runs
    // ir/Verifier on every would-be winner and rolls rejects back, so a
    // malformed body can never reach the host module silently.
    // Clean-up stage (Fig 1): register promotion of whatever slots remain
    // promotable (for FMSA inputs: the demotion slots that merging did not
    // ruin) and general simplification.
    promoteAllocasToRegisters(*Merged, Ctx);
    // PreserveTraps: the merged body must keep the original pair's trap
    // behaviour. Promotion strips demotion slots, which can leave a
    // potentially-trapping load dead; default DCE would erase it and with
    // it an observable out-of-bounds trap.
    simplifyFunction(*Merged, Ctx, /*PreserveTraps=*/true);
    Result.Merged = Merged;
    return Result;
  }

private:
  //===--------------------------------------------------------------------===//
  // Shell and bookkeeping
  //===--------------------------------------------------------------------===//

  void createFunctionShell() {
    Result.Signature = mergeSignatures(F1, F2, Ctx);
    Merged =
        M.createFunction(M.makeUniqueName(NameHint), Result.Signature.FnTy);
    Merged->getArg(0)->setName("fid");
    Fid = Merged->getArg(0);
    Entry = Merged->createBlock("entry");
  }

  void indexAlignment() {
    for (const AlignedEntry &E : Align.Entries) {
      if (!E.isMatch())
        continue;
      const SeqItem &A = Seq1[static_cast<size_t>(E.Idx1)];
      const SeqItem &B = Seq2[static_cast<size_t>(E.Idx2)];
      assert(itemsMatch(A, B) && "alignment paired unmatchable items");
      if (A.isLabel())
        LabelMatch[A.Block] = B.Block;
      else
        InstMatch[A.Inst] = B.Inst;
    }
  }

  Value *&vmap(int FnIdx, Value *V) {
    return FnIdx == 1 ? VMap1[V] : VMap2[V];
  }

  std::map<BasicBlock *, BasicBlock *> &head(int FnIdx) {
    return FnIdx == 1 ? Head1 : Head2;
  }

  std::map<BasicBlock *, BasicBlock *> &revMap(int FnIdx) {
    return FnIdx == 1 ? RevMap1 : RevMap2;
  }

  /// Resolves an original value of function \p FnIdx to its merged-function
  /// counterpart.
  Value *resolve(int FnIdx, Value *V) {
    if (auto *A = dyn_cast<Argument>(V)) {
      unsigned Slot = FnIdx == 1
                          ? Result.Signature.ArgIndex1[A->getArgIndex()]
                          : Result.Signature.ArgIndex2[A->getArgIndex()];
      return Merged->getArg(Slot);
    }
    if (isa<Constant>(V))
      return V;
    auto &Map = FnIdx == 1 ? VMap1 : VMap2;
    auto It = Map.find(V);
    assert(It != Map.end() && "original value was never cloned/merged");
    return It->second;
  }

  //===--------------------------------------------------------------------===//
  // §4.1: CFG generation
  //===--------------------------------------------------------------------===//

  /// Copies the phi-nodes of \p B (function \p FnIdx) into \p MB; incoming
  /// entries are assigned later from the block mapping (§4.2.3).
  void copyPhis(BasicBlock *B, int FnIdx, BasicBlock *MB) {
    for (PhiInst *P : B->phis()) {
      auto *NP = new PhiInst(P->getType());
      NP->setName(P->getName());
      // Phis must stay contiguous at the head.
      Instruction *FirstNonPhi = MB->getFirstNonPhi();
      if (FirstNonPhi)
        NP->insertBefore(FirstNonPhi);
      else
        MB->push_back(NP);
      vmap(FnIdx, P) = NP;
      CopiedPhis.push_back({NP, P, FnIdx});
      Origin[NP] = FnIdx == 1 ? MergeOrigin::FromF1 : MergeOrigin::FromF2;
    }
  }

  void createSharedBlocks() {
    for (const AlignedEntry &E : Align.Entries) {
      if (!E.isMatch())
        continue;
      const SeqItem &A = Seq1[static_cast<size_t>(E.Idx1)];
      const SeqItem &B = Seq2[static_cast<size_t>(E.Idx2)];
      BasicBlock *MB = Merged->createBlock();
      if (A.isLabel()) {
        MB->setName("m." + A.Block->getName() + "." + B.Block->getName());
        Head1[A.Block] = MB;
        Head2[B.Block] = MB;
        copyPhis(A.Block, 1, MB);
        copyPhis(B.Block, 2, MB);
      } else {
        Instruction *C = cloneInstruction(A.Inst, Ctx);
        C->setName(A.Inst->getName());
        MB->push_back(C);
        VMap1[A.Inst] = C;
        VMap2[B.Inst] = C;
        MergedPair[C] = {A.Inst, B.Inst};
        Origin[C] = MergeOrigin::Shared;
        InstBlock1[A.Inst] = MB;
        InstBlock2[B.Inst] = MB;
      }
    }
  }

  /// Walks function \p FnIdx block by block, creating label blocks and
  /// non-matching run blocks, collecting the per-block segment chains.
  void buildSegmentsAndClones(int FnIdx) {
    Function &F = FnIdx == 1 ? F1 : F2;
    auto &Heads = head(FnIdx);
    auto &Rev = revMap(FnIdx);
    auto &InstBlocks = FnIdx == 1 ? InstBlock1 : InstBlock2;
    auto &Next = FnIdx == 1 ? Next1 : Next2;

    for (BasicBlock *B : F) {
      std::vector<BasicBlock *> Segs;
      BasicBlock *LB;
      auto HIt = Heads.find(B);
      if (HIt != Heads.end()) {
        LB = HIt->second; // matched label: shared block
      } else {
        LB = Merged->createBlock("c" + std::to_string(FnIdx) + "." +
                                 B->getName());
        copyPhis(B, FnIdx, LB);
        Heads[B] = LB;
        BlockSide[LB] =
            FnIdx == 1 ? MergeOrigin::FromF1 : MergeOrigin::FromF2;
      }
      Rev[LB] = B;
      Segs.push_back(LB);

      BasicBlock *Run = nullptr;
      for (Instruction *I : *B) {
        if (I->isPhi() || isa<LandingPadInst>(I))
          continue;
        auto MIt = InstBlocks.find(I);
        if (MIt != InstBlocks.end()) {
          Run = nullptr;
          Rev[MIt->second] = B;
          Segs.push_back(MIt->second);
          continue;
        }
        if (!Run) {
          Run = Merged->createBlock("r" + std::to_string(FnIdx) + "." +
                                    B->getName());
          Rev[Run] = B;
          BlockSide[Run] =
              FnIdx == 1 ? MergeOrigin::FromF1 : MergeOrigin::FromF2;
          Segs.push_back(Run);
        }
        Instruction *C = cloneInstruction(I, Ctx);
        C->setName(I->getName());
        Run->push_back(C);
        vmap(FnIdx, I) = C;
        OrigOfClone[C] = I;
        Origin[C] = FnIdx == 1 ? MergeOrigin::FromF1 : MergeOrigin::FromF2;
      }

      for (size_t S = 0; S + 1 < Segs.size(); ++S) {
        assert(!Next.count(Segs[S]) && "segment chained twice");
        Next[Segs[S]] = Segs[S + 1];
      }
    }
  }

  /// Appends the chain branches (§4.1): unconditional within one
  /// function's flow, conditional on %fid where the two functions leave a
  /// shared block differently.
  void chainSegments() {
    IRBuilder B(Ctx, Entry);
    BasicBlock *H1 = Head1.at(F1.getEntryBlock());
    BasicBlock *H2 = Head2.at(F2.getEntryBlock());
    Instruction *Dispatch =
        H1 == H2 ? B.createBr(H1) : B.createCondBr(Fid, H1, H2);
    Synthetic.insert(Dispatch);

    std::vector<BasicBlock *> Blocks(Merged->begin(), Merged->end());
    for (BasicBlock *MB : Blocks) {
      if (MB == Entry || MB->getTerminator())
        continue;
      auto It1 = Next1.find(MB);
      auto It2 = Next2.find(MB);
      BasicBlock *N1 = It1 == Next1.end() ? nullptr : It1->second;
      BasicBlock *N2 = It2 == Next2.end() ? nullptr : It2->second;
      assert((N1 || N2) && "unterminated block with no chain successor");
      B.setInsertPoint(MB);
      Instruction *Chain;
      if (N1 && N2 && N1 != N2)
        Chain = B.createCondBr(Fid, N1, N2);
      else
        Chain = B.createBr(N1 ? N1 : N2);
      Synthetic.insert(Chain);
    }
  }

  //===--------------------------------------------------------------------===//
  // §4.2.1: label operands (with the Fig 11 xor optimization)
  //===--------------------------------------------------------------------===//

  void resolveSuccessors() {
    std::vector<BasicBlock *> Blocks(Merged->begin(), Merged->end());
    for (BasicBlock *MB : Blocks) {
      Instruction *T = MB->getTerminator();
      assert(T && "block left unterminated after chaining");
      if (Synthetic.count(T))
        continue;
      auto PIt = MergedPair.find(T);
      if (PIt == MergedPair.end()) {
        // Cloned from one side: route successors through that side's head
        // map.
        MergeOrigin O = Origin.at(T);
        if (O == MergeOrigin::Shared)
          continue; // non-terminator or already handled
        int FnIdx = O == MergeOrigin::FromF1 ? 1 : 2;
        auto &Heads = head(FnIdx);
        for (unsigned S = 0; S < T->getNumSuccessors(); ++S)
          T->setSuccessor(S, Heads.at(T->getSuccessor(S)));
        continue;
      }
      // A merged terminator pair.
      auto [I1, I2] = PIt->second;
      unsigned NumSucc = T->getNumSuccessors();
      std::vector<BasicBlock *> S1(NumSucc), S2(NumSucc);
      for (unsigned S = 0; S < NumSucc; ++S) {
        S1[S] = Head1.at(I1->getSuccessor(S));
        S2[S] = Head2.at(I2->getSuccessor(S));
      }
      // Fig 11: crossed conditional branches merge with one xor on the
      // condition instead of two label-selection blocks.
      auto *Br = dyn_cast<BranchInst>(T);
      if (Options.EnableXorBranchFusion && Br && Br->isConditional() &&
          NumSucc == 2 && S1[0] == S2[1] && S1[1] == S2[0] &&
          S1[0] != S1[1]) {
        // Successors take F2's orientation; condition becomes
        // xor(cond, fid) during operand resolution.
        T->setSuccessor(0, S1[1]);
        T->setSuccessor(1, S1[0]);
        XorFused.insert(T);
        ++Result.XorFusions;
        continue;
      }
      std::map<std::pair<BasicBlock *, BasicBlock *>, BasicBlock *> LocalSel;
      for (unsigned S = 0; S < NumSucc; ++S) {
        if (S1[S] == S2[S]) {
          T->setSuccessor(S, S1[S]);
          continue;
        }
        BasicBlock *&Sel = LocalSel[{S1[S], S2[S]}];
        if (!Sel) {
          Sel = Merged->createBlock("lsel");
          IRBuilder B(Ctx, Sel);
          Synthetic.insert(B.createCondBr(Fid, S1[S], S2[S]));
          RevMap1[Sel] = I1->getParent();
          RevMap2[Sel] = I2->getParent();
          ++Result.LabelSelectionBlocks;
        }
        T->setSuccessor(S, Sel);
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // §4.2.2: landing blocks
  //===--------------------------------------------------------------------===//

  /// The landingpad instruction heading \p UnwindDest in an input function.
  static LandingPadInst *originalLandingPad(BasicBlock *UnwindDest) {
    Instruction *First = UnwindDest->getFirstNonPhi();
    assert(First && isa<LandingPadInst>(First) &&
           "invoke unwind destination without landingpad");
    return cast<LandingPadInst>(First);
  }

  void materializeLandingBlocks() {
    std::vector<InvokeInst *> Invokes;
    for (BasicBlock *MB : *Merged)
      for (Instruction *I : *MB)
        if (auto *Inv = dyn_cast<InvokeInst>(I))
          Invokes.push_back(Inv);
    for (InvokeInst *Inv : Invokes) {
      BasicBlock *Target = Inv->getUnwindDest();
      BasicBlock *LB = Merged->createBlock("lpad");
      IRBuilder B(Ctx, LB);
      auto *LP = cast<LandingPadInst>(B.createLandingPad("lp"));
      Synthetic.insert(B.createBr(Target));
      Inv->setUnwindDest(LB);
      Origin[LP] = MergeOrigin::Shared;

      auto PIt = MergedPair.find(Inv);
      if (PIt != MergedPair.end()) {
        auto [I1, I2] = PIt->second;
        VMap1[originalLandingPad(cast<InvokeInst>(I1)->getUnwindDest())] = LP;
        VMap2[originalLandingPad(cast<InvokeInst>(I2)->getUnwindDest())] = LP;
        RevMap1[LB] = I1->getParent();
        RevMap2[LB] = I2->getParent();
      } else {
        int FnIdx = Origin.at(Inv) == MergeOrigin::FromF1 ? 1 : 2;
        // The clone still references nothing original, but the pair map
        // does: find the original invoke through the value map inverse is
        // unnecessary — the unwind target was already routed through
        // head(FnIdx), so recover the original landingpad via the original
        // instruction recorded at clone time.
        InvokeInst *OrigInv = OrigOfClone.count(Inv)
                                  ? cast<InvokeInst>(OrigOfClone.at(Inv))
                                  : nullptr;
        assert(OrigInv && "cloned invoke without origin record");
        vmap(FnIdx, originalLandingPad(OrigInv->getUnwindDest())) = LP;
        revMap(FnIdx)[LB] = OrigInv->getParent();
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // §4.2: value operand assignment (Fig 8/9)
  //===--------------------------------------------------------------------===//

  Value *selectOperand(Value *V1, Value *V2, Instruction *Before) {
    if (V1 == V2)
      return V1;
    if (isa<UndefValue>(V1))
      return V2;
    if (isa<UndefValue>(V2))
      return V1;
    auto *Sel = new SelectInst(Fid, V1, V2);
    Sel->setName("opsel");
    Sel->insertBefore(Before);
    Origin[Sel] = MergeOrigin::Shared;
    ++Result.SelectsInserted;
    return Sel;
  }

  void resolveOperands() {
    std::vector<BasicBlock *> Blocks(Merged->begin(), Merged->end());
    for (BasicBlock *MB : Blocks) {
      std::vector<Instruction *> Insts(MB->begin(), MB->end());
      for (Instruction *I : Insts) {
        if (Synthetic.count(I) || I->isPhi() || isa<LandingPadInst>(I))
          continue;
        auto PIt = MergedPair.find(I);
        if (PIt == MergedPair.end()) {
          // One-sided clone: remap operands through its function's maps.
          MergeOrigin O = Origin.at(I);
          assert(O != MergeOrigin::Shared && "unexpected shared clone");
          int FnIdx = O == MergeOrigin::FromF1 ? 1 : 2;
          // initOperand: the slots hold cloneInstruction's unregistered
          // placeholders into the original function.
          for (unsigned K = 0; K < I->getNumOperands(); ++K)
            I->initOperand(K, resolve(FnIdx, I->getOperand(K)));
          continue;
        }
        auto [I1, I2] = PIt->second;
        unsigned N = I->getNumOperands();
        std::vector<Value *> V1(N), V2(N);
        for (unsigned K = 0; K < N; ++K) {
          V1[K] = resolve(1, I1->getOperand(K));
          V2[K] = resolve(2, I2->getOperand(K));
        }
        // Fig 9: commutative operand reordering to maximize matches.
        if (Options.EnableOperandReordering && I->isCommutative() &&
            N == 2) {
          unsigned Direct = (V1[0] != V2[0]) + (V1[1] != V2[1]);
          unsigned Swapped = (V1[0] != V2[1]) + (V1[1] != V2[0]);
          if (Swapped < Direct)
            std::swap(V2[0], V2[1]);
        }
        for (unsigned K = 0; K < N; ++K)
          I->initOperand(K, selectOperand(V1[K], V2[K], I));
        // Fig 11: apply the xor to the (already selected) condition.
        if (XorFused.count(I)) {
          auto *Xor =
              new BinaryOperator(ValueKind::Xor, I->getOperand(0), Fid);
          Xor->setName("brxor");
          Xor->insertBefore(I);
          Origin[Xor] = MergeOrigin::Shared;
          I->setOperand(0, Xor);
        }
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // §4.2.3: phi incoming values through the block mapping
  //===--------------------------------------------------------------------===//

  void assignPhiIncomings() {
    // Full predecessor map over the now-final CFG.
    std::map<BasicBlock *, std::vector<BasicBlock *>> Preds;
    for (BasicBlock *MB : *Merged) {
      Instruction *T = MB->getTerminator();
      std::set<BasicBlock *> Seen;
      for (BasicBlock *S : T->successors())
        if (Seen.insert(S).second)
          Preds[S].push_back(MB);
    }
    for (const CopiedPhi &CP : CopiedPhis) {
      auto &Rev = revMap(CP.FnIdx);
      for (BasicBlock *PB : Preds[CP.Clone->getParent()]) {
        Value *Incoming = Ctx.getUndef(CP.Clone->getType());
        auto RIt = Rev.find(PB);
        if (RIt != Rev.end()) {
          int Idx = CP.Orig->indexOfBlock(RIt->second);
          if (Idx >= 0)
            Incoming = resolve(
                CP.FnIdx,
                CP.Orig->getIncomingValue(static_cast<unsigned>(Idx)));
        }
        CP.Clone->addIncoming(Incoming, PB);
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // Data
  //===--------------------------------------------------------------------===//

  Function &F1;
  Function &F2;
  const std::vector<SeqItem> &Seq1;
  const std::vector<SeqItem> &Seq2;
  const AlignmentResult &Align;
  MergeCodeGenOptions Options;
  Module &M;
  Context &Ctx;
  std::string NameHint;

  Function *Merged = nullptr;
  Value *Fid = nullptr;
  BasicBlock *Entry = nullptr;
  GeneratedMerge Result;

  // Alignment indices.
  std::map<BasicBlock *, BasicBlock *> LabelMatch; // B1 -> B2
  std::map<Instruction *, Instruction *> InstMatch; // I1 -> I2

  // Value/block mappings (§4.1.2).
  std::map<Value *, Value *> VMap1, VMap2;           // original -> merged
  std::map<BasicBlock *, BasicBlock *> Head1, Head2; // original -> merged
  std::map<BasicBlock *, BasicBlock *> RevMap1, RevMap2; // merged -> orig
  std::map<Instruction *, BasicBlock *> InstBlock1, InstBlock2;
  std::map<Instruction *, std::pair<Instruction *, Instruction *>> MergedPair;
  std::map<Instruction *, Instruction *> OrigOfClone; // clone -> original
  std::map<Instruction *, MergeOrigin> Origin;
  std::map<BasicBlock *, MergeOrigin> BlockSide;
  std::map<BasicBlock *, BasicBlock *> Next1, Next2; // chain successors
  std::set<Instruction *> Synthetic;                 // generator branches
  std::set<Instruction *> XorFused;

  struct CopiedPhi {
    PhiInst *Clone;
    PhiInst *Orig;
    int FnIdx;
  };
  std::vector<CopiedPhi> CopiedPhis;
};

} // namespace

GeneratedMerge salssa::generateMergedFunction(
    Function &F1, Function &F2, const std::vector<SeqItem> &Seq1,
    const std::vector<SeqItem> &Seq2, const AlignmentResult &Alignment,
    const MergeCodeGenOptions &Options, const std::string &NameHint,
    Module *TargetModule) {
  Generator G(F1, F2, Seq1, Seq2, Alignment, Options, NameHint, TargetModule);
  return G.run();
}
