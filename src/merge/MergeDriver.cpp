//===- merge/MergeDriver.cpp - Module-level function merging pass --------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "merge/MergeDriver.h"
#include "ir/Module.h"
#include "merge/CandidateIndex.h"
#include "merge/Fingerprint.h"
#include "transforms/Mem2Reg.h"
#include "transforms/Reg2Mem.h"
#include "transforms/Simplify.h"
#include <algorithm>
#include <chrono>
#include <map>

using namespace salssa;

namespace {

struct PoolEntry {
  Function *F = nullptr;
  Fingerprint FP;
  unsigned CostSize = 0; ///< profitability baseline (pre-demotion size)
  bool Consumed = false;
};

/// Brute-force ranking, the paper's scheme verbatim: scan every live
/// pool entry, sort by (distance, pool position), truncate to top-k.
/// Kept bit-compatible with CandidateIndex::query for A/B comparison.
std::vector<CandidateIndex::Hit>
bruteForceRank(const std::vector<PoolEntry> &Pool, size_t I, unsigned K) {
  std::vector<CandidateIndex::Hit> Candidates;
  for (size_t J = 0; J < Pool.size(); ++J) {
    if (J == I || Pool[J].Consumed)
      continue;
    uint64_t D = fingerprintDistance(Pool[I].FP, Pool[J].FP);
    if (D == UINT64_MAX)
      continue; // incompatible return types
    Candidates.push_back({D, static_cast<uint32_t>(J)});
  }
  std::stable_sort(Candidates.begin(), Candidates.end(),
                   [](const CandidateIndex::Hit &A,
                      const CandidateIndex::Hit &B) {
                     return A.Distance < B.Distance;
                   });
  if (Candidates.size() > K)
    Candidates.resize(K);
  return Candidates;
}

} // namespace

MergeDriverStats salssa::runFunctionMerging(Module &M,
                                            const MergeDriverOptions &Options) {
  MergeDriverStats Stats;
  Context &Ctx = M.getContext();
  auto T0 = std::chrono::steady_clock::now();
  const bool IsFMSA = Options.Technique == MergeTechnique::FMSA;
  MergeCodeGenOptions CGOpts = MergeCodeGenOptions::forTechnique(
      Options.Technique, Options.EnablePhiCoalescing);

  // Snapshot profitability baselines before any preprocessing.
  std::map<Function *, unsigned> BaselineSize;
  for (Function *F : M.functions())
    if (!F->isDeclaration())
      BaselineSize[F] = estimateFunctionSize(*F, Options.Arch);

  // FMSA preprocessing: demote every definition in place.
  if (IsFMSA)
    for (Function *F : M.functions())
      if (!F->isDeclaration())
        demoteRegistersToMemory(*F, Ctx);

  // Build the candidate pool. Like the paper, merging proceeds from the
  // largest functions to the smallest.
  std::vector<PoolEntry> Pool;
  for (Function *F : M.functions()) {
    if (!F->isMergeable())
      continue;
    PoolEntry E;
    E.F = F;
    E.FP = Fingerprint::compute(*F);
    E.CostSize = BaselineSize.at(F);
    Pool.push_back(E);
  }
  std::stable_sort(Pool.begin(), Pool.end(),
                   [](const PoolEntry &A, const PoolEntry &B) {
                     return A.FP.Size > B.FP.Size;
                   });

  // Index every live pool entry by id == pool position. The index is
  // maintained incrementally: committed merges retire their inputs and
  // remerge entries are inserted, so no pool rescan ever happens.
  const bool UseIndex = Options.Ranking == RankingStrategy::CandidateIndex;
  CandidateIndex Index;
  if (UseIndex)
    for (size_t I = 0; I < Pool.size(); ++I)
      Index.insert(static_cast<uint32_t>(I), Pool[I].FP);

  // Main loop. Iterating by index: committed merges append the merged
  // function to the pool so it can merge again.
  for (size_t I = 0; I < Pool.size(); ++I) {
    if (Pool[I].Consumed)
      continue;
    Function *F1 = Pool[I].F;

    // Pairing phase: rank the other live candidates by fingerprint
    // distance and keep the top-t. Both strategies produce the same
    // list; only the cost differs (this is the Stats.RankingSeconds
    // A/B that bench_ranking_scaling measures).
    auto RankT0 = std::chrono::steady_clock::now();
    std::vector<CandidateIndex::Hit> Candidates =
        UseIndex ? Index.query(Pool[I].FP, Options.ExplorationThreshold,
                               static_cast<uint32_t>(I))
                 : bruteForceRank(Pool, I, Options.ExplorationThreshold);
    Stats.RankingSeconds += std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - RankT0)
                                .count();

    // Try the top-t candidates; keep the most profitable attempt.
    MergeAttempt Best;
    size_t BestIdx = 0;
    size_t BestRecord = 0;
    for (const CandidateIndex::Hit &R : Candidates) {
      Function *F2 = Pool[R.Id].F;
      MergeAttempt A =
          attemptMerge(*F1, *F2, CGOpts, Options.Arch, Pool[I].CostSize,
                       Pool[R.Id].CostSize);
      ++Stats.Attempts;
      Stats.AlignmentSeconds += A.Stats.AlignmentSeconds;
      Stats.CodeGenSeconds += A.Stats.CodeGenSeconds;
      Stats.PeakAlignmentBytes =
          std::max(Stats.PeakAlignmentBytes, A.Stats.AlignmentBytes);
      MergeRecord Rec;
      Rec.Name1 = F1->getName();
      Rec.Name2 = F2->getName();
      Rec.Stats = A.Stats;
      size_t RecIdx = Stats.Records.size();
      Stats.Records.push_back(Rec);
      if (!A.Valid)
        continue;
      if (A.Stats.Profitable)
        ++Stats.ProfitableMerges;
      if (A.Stats.Profitable && (!Best.Valid || A.profit() > Best.profit())) {
        if (Best.Valid)
          discardMerge(Best);
        Best = A;
        BestIdx = R.Id;
        BestRecord = RecIdx;
      } else {
        discardMerge(A);
      }
    }

    if (!Best.Valid)
      continue;

    // Commit: thunk both inputs, retire them from the pool, and offer the
    // merged function for further merging.
    commitMerge(Best, Ctx);
    ++Stats.CommittedMerges;
    // Mark the exact attempt that won by record index: name matching
    // could flag the wrong record when the same pair is re-attempted
    // across pool iterations.
    Stats.Records[BestRecord].Committed = true;
    Pool[I].Consumed = true;
    Pool[BestIdx].Consumed = true;
    if (UseIndex) {
      Index.retire(static_cast<uint32_t>(I));
      Index.retire(static_cast<uint32_t>(BestIdx));
    }
    if (Options.AllowRemerge) {
      PoolEntry E;
      E.F = Best.Gen.Merged;
      E.FP = Fingerprint::compute(*E.F);
      E.CostSize = estimateFunctionSize(*E.F, Options.Arch);
      Pool.push_back(E);
      if (UseIndex)
        Index.insert(static_cast<uint32_t>(Pool.size() - 1), Pool.back().FP);
    }
  }

  // FMSA post-pass: the late pipeline re-promotes what demotion left
  // behind in unmerged functions (usually restoring them, hence the tiny
  // residue the paper measures).
  if (IsFMSA) {
    for (Function *F : M.functions()) {
      if (F->isDeclaration())
        continue;
      promoteAllocasToRegisters(*F, Ctx);
      simplifyFunction(*F, Ctx);
    }
  }

  Stats.TotalSeconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - T0)
                           .count();
  return Stats;
}

void salssa::runFMSAResidueOnly(Module &M) {
  Context &Ctx = M.getContext();
  for (Function *F : M.functions()) {
    if (F->isDeclaration())
      continue;
    demoteRegistersToMemory(*F, Ctx);
    promoteAllocasToRegisters(*F, Ctx);
    simplifyFunction(*F, Ctx);
  }
}
