//===- merge/MergeDriver.cpp - Module-level function merging pass --------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "merge/MergeDriver.h"
#include "ir/Module.h"
#include "merge/CrossModuleMerger.h"
#include "merge/MergePipeline.h"
#include "support/Chrono.h"
#include "transforms/Mem2Reg.h"
#include "transforms/Reg2Mem.h"
#include "transforms/Simplify.h"
#include <chrono>
#include <map>

using namespace salssa;

MergeDriverStats salssa::runFunctionMerging(Module &M,
                                            const MergeDriverOptions &Options) {
  // A/B route: the cross-module session with one registered module must
  // reproduce the direct path bit for bit (cross_module_test enforces
  // it). Sharded runs (ShardCount != 1) take the same route — the
  // session layer owns shard orchestration — and so do the structural-
  // hash fast path and the decision cache, which are session-level
  // stages (pre-cluster pass, cache load/save).
  if (Options.CrossModule || Options.ShardCount != 1 ||
      Options.HashClustering || !Options.DecisionCachePath.empty()) {
    MergeDriverOptions Direct = Options;
    Direct.CrossModule = false; // the session drives the pipeline itself
    CrossModuleMerger Session(Direct);
    Session.addModule(M);
    return Session.run().Driver;
  }

  MergeDriverStats Stats;
  Context &Ctx = M.getContext();
  auto T0 = std::chrono::steady_clock::now();
  const bool IsFMSA = Options.Technique == MergeTechnique::FMSA;

  // Snapshot profitability baselines before any preprocessing.
  std::map<Function *, unsigned> BaselineSize;
  for (Function *F : M.functions())
    if (!F->isDeclaration())
      BaselineSize[F] = estimateFunctionSize(*F, Options.Arch);

  // FMSA preprocessing: demote every definition in place.
  if (IsFMSA)
    for (Function *F : M.functions())
      if (!F->isDeclaration())
        demoteRegistersToMemory(*F, Ctx);

  // The staged driver: rank / attempt / commit (MergePipeline.h). Serial
  // when Options.NumThreads == 1, optimistic rounds on a worker pool
  // otherwise — the committed merges are identical either way.
  {
    MergePipeline Pipeline(M, Options, BaselineSize, Stats);
    Pipeline.run();
  }

  // FMSA post-pass: the late pipeline re-promotes what demotion left
  // behind in unmerged functions (usually restoring them, hence the tiny
  // residue the paper measures).
  if (IsFMSA) {
    for (Function *F : M.functions()) {
      if (F->isDeclaration())
        continue;
      promoteAllocasToRegisters(*F, Ctx);
      simplifyFunction(*F, Ctx);
    }
  }

  Stats.TotalSeconds = secondsSince(T0);
  return Stats;
}

void salssa::runFMSAResidueOnly(Module &M) {
  Context &Ctx = M.getContext();
  for (Function *F : M.functions()) {
    if (F->isDeclaration())
      continue;
    demoteRegistersToMemory(*F, Ctx);
    promoteAllocasToRegisters(*F, Ctx);
    simplifyFunction(*F, Ctx);
  }
}
