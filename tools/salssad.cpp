//===- tools/salssad.cpp - The merge daemon binary ----------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
//
// salssad — serve one long-lived incremental merge session over a
// Unix-domain socket (service/Daemon.h). Clients register a
// deterministic module spec and stream edit deltas; the daemon keeps
// the merge warm across all of them, and — when started with
// --decision-cache — across its own restarts (the first session after a
// restart warm-replays from the cache file).
//
//   salssad --socket=/tmp/salssad.sock \
//           [--decision-cache=PATH]    # warm-restart cache file
//           [--hash-clustering]        # exact-clone pre-clustering
//           [--reelect-host]           # re-run host election per delta
//           [--quarantine-decay=N]     # strike decay, in epochs
//           [--token-cache=N]          # ApplyDelta idempotency window
//           [--faults=SPEC]            # SALSSA_FAULTS-style injection
//
// The process exits when a client sends Shutdown.
//
//===----------------------------------------------------------------------===//

#include "service/Daemon.h"
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace salssa;

namespace {

bool flagValue(const char *Arg, const char *Name, std::string &Out) {
  size_t N = std::strlen(Name);
  if (std::strncmp(Arg, Name, N) != 0 || Arg[N] != '=')
    return false;
  Out = Arg + N + 1;
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: salssad --socket=PATH [--decision-cache=PATH] "
               "[--hash-clustering] [--reelect-host] "
               "[--quarantine-decay=N] [--token-cache=N] [--faults=SPEC]\n");
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  DaemonOptions Opts;
  std::string Value;
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (flagValue(Arg, "--socket", Value)) {
      Opts.SocketPath = Value;
    } else if (flagValue(Arg, "--decision-cache", Value)) {
      Opts.Defaults.Driver.DecisionCachePath = Value;
    } else if (std::strcmp(Arg, "--hash-clustering") == 0) {
      Opts.Defaults.Driver.HashClustering = true;
    } else if (std::strcmp(Arg, "--reelect-host") == 0) {
      Opts.Defaults.ReelectHost = true;
    } else if (flagValue(Arg, "--quarantine-decay", Value)) {
      Opts.Defaults.QuarantineDecayEpochs =
          static_cast<unsigned>(std::strtoul(Value.c_str(), nullptr, 10));
    } else if (flagValue(Arg, "--token-cache", Value)) {
      Opts.TokenCacheEntries =
          static_cast<size_t>(std::strtoul(Value.c_str(), nullptr, 10));
    } else if (flagValue(Arg, "--faults", Value)) {
      Opts.Faults = FaultInjectionConfig::parse(Value);
    } else {
      std::fprintf(stderr, "salssad: unknown argument '%s'\n", Arg);
      return usage();
    }
  }
  if (Opts.SocketPath.empty())
    return usage();

  Daemon D(Opts);
  if (!D.start()) {
    std::fprintf(stderr, "salssad: %s\n", D.lastError().c_str());
    return 1;
  }
  std::printf("salssad: listening on %s\n", Opts.SocketPath.c_str());
  std::fflush(stdout);
  D.wait();
  DaemonCounters C = D.counters();
  std::printf("salssad: served %llu requests over %llu connections "
              "(%llu deltas, %llu token replays, %llu healed batches, "
              "%llu injected faults)\n",
              static_cast<unsigned long long>(C.RequestsServed),
              static_cast<unsigned long long>(C.Connections),
              static_cast<unsigned long long>(C.DeltasApplied),
              static_cast<unsigned long long>(C.TokenReplays),
              static_cast<unsigned long long>(C.HealedBatches),
              static_cast<unsigned long long>(C.ProtocolFaultsInjected));
  return 0;
}
