//===- tools/salssa_client.cpp - Merge daemon CLI client ----------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
//
// salssa-client — drive a running salssad (tools/salssad.cpp) from the
// command line.
//
//   salssa-client --socket=PATH stats [--prints]
//   salssa-client --socket=PATH shutdown
//   salssa-client --socket=PATH run-script [--steps=N] [--seed=N]
//                 [--threads=N] [--shards=N] [--verify] [--json]
//
// `run-script` is the end-to-end exercise (and the CI daemon smoke):
// it registers the canonical benchmark session, plans a deterministic
// edit script, streams each step through ApplyDelta, and — with
// --verify — replays the identical script against an in-process
// MergeService, asserting the daemon's module digest matches after
// every epoch (byte-identity over the wire). --json emits one summary
// line for the CI stats artifact.
//
//===----------------------------------------------------------------------===//

#include "ir/IRPrinter.h"
#include "merge/MergeService.h"
#include "service/Client.h"
#include "support/RNG.h"
#include "workloads/EditScript.h"
#include "workloads/Suites.h"
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace salssa;

namespace {

bool flagValue(const char *Arg, const char *Name, std::string &Out) {
  size_t N = std::strlen(Name);
  if (std::strncmp(Arg, Name, N) != 0 || Arg[N] != '=')
    return false;
  Out = Arg + N + 1;
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: salssa-client --socket=PATH "
               "(stats [--prints] | shutdown | run-script [--steps=N] "
               "[--seed=N] [--threads=N] [--shards=N] [--verify] "
               "[--json])\n");
  return 2;
}

BenchmarkProfile clientProfile() {
  BenchmarkProfile P;
  P.Name = "daemon.cli";
  P.NumFunctions = 26;
  P.MinSize = 6;
  P.AvgSize = 36;
  P.MaxSize = 120;
  P.CloneFamilyPercent = 55;
  P.MinFamily = 2;
  P.MaxFamily = 4;
  P.FamilyDriftPercent = 10;
  P.LoopPercent = 50;
  P.RetTypeVariety = 3;
  P.Seed = 9001;
  return P;
}

EditScriptOptions scriptOptions(uint64_t Seed, unsigned Steps) {
  EditScriptOptions EO;
  EO.NumSteps = Steps;
  EO.ChangesPerStep = 3;
  EO.AddsPerStep = 1;
  EO.DeletesPerStep = 1;
  EO.Generate.TargetSize = 30;
  EO.Generate.RetTypeVariety = 3;
  EO.Seed = Seed;
  return EO;
}

uint64_t groupDigest(const std::vector<Module *> &Mods) {
  std::string Prints;
  for (Module *M : Mods)
    Prints += printModule(*M);
  return fnv1a64(reinterpret_cast<const uint8_t *>(Prints.data()),
                 Prints.size());
}

int cmdStats(DaemonClient &Client, bool Prints) {
  QueryStatsResponse Resp;
  DaemonClient::Result R = Client.queryStats(Prints, Resp);
  if (!R.TransportOk || R.Status != StatusCode::Ok) {
    std::fprintf(stderr, "salssa-client: stats failed: %s (%s)\n",
                 statusCodeName(R.Status), R.ErrorMessage.c_str());
    return 1;
  }
  std::printf("epoch=%u attempts=%llu commits=%llu cross=%llu "
              "size=%llu->%llu cache_hits=%llu cluster_commits=%llu "
              "full_remerges=%u reelections=%u digest=%016llx\n",
              Resp.Stats.Epoch,
              static_cast<unsigned long long>(Resp.Stats.Attempts),
              static_cast<unsigned long long>(Resp.Stats.CommittedMerges),
              static_cast<unsigned long long>(Resp.Stats.CrossModuleMerges),
              static_cast<unsigned long long>(Resp.Stats.SizeBefore),
              static_cast<unsigned long long>(Resp.Stats.SizeAfter),
              static_cast<unsigned long long>(Resp.Stats.CacheHits),
              static_cast<unsigned long long>(Resp.Stats.HashClusterCommits),
              Resp.Stats.FullRemerges, Resp.Stats.HostReelections,
              static_cast<unsigned long long>(Resp.Stats.ModuleDigest));
  std::printf("daemon: connections=%llu requests=%llu deltas=%llu "
              "replays=%llu healed=%llu expired=%llu faults=%llu "
              "errors=%llu\n",
              static_cast<unsigned long long>(Resp.Daemon.Connections),
              static_cast<unsigned long long>(Resp.Daemon.RequestsServed),
              static_cast<unsigned long long>(Resp.Daemon.DeltasApplied),
              static_cast<unsigned long long>(Resp.Daemon.TokenReplays),
              static_cast<unsigned long long>(Resp.Daemon.HealedBatches),
              static_cast<unsigned long long>(Resp.Daemon.DeadlineExpirations),
              static_cast<unsigned long long>(
                  Resp.Daemon.ProtocolFaultsInjected),
              static_cast<unsigned long long>(Resp.Daemon.RequestErrors));
  if (Prints)
    std::fwrite(Resp.Prints.data(), 1, Resp.Prints.size(), stdout);
  return 0;
}

int cmdRunScript(DaemonClient &Client, unsigned Steps, uint64_t Seed,
                 unsigned Threads, unsigned Shards, bool Verify, bool Json) {
  RegisterModulesRequest RM;
  RM.Profile = clientProfile();
  RM.NumModules = 2;
  RM.NumThreads = Threads;
  RM.ShardCount = Shards;
  RM.ExplorationThreshold = 3;
  StatsSnapshot Init;
  DaemonClient::Result R = Client.registerModules(RM, Init);
  if (!R.TransportOk || R.Status != StatusCode::Ok) {
    std::fprintf(stderr, "salssa-client: register failed: %s (%s)\n",
                 statusCodeName(R.Status), R.ErrorMessage.c_str());
    return 1;
  }

  // Plan the script from a local pristine copy of the same spec (the
  // wire carries name-addressed seeded ops, never IR).
  Context Ctx;
  ModuleGroup Group = buildBenchmarkModuleGroup(RM.Profile, Ctx, RM.NumModules);
  std::vector<Module *> Mods;
  for (size_t I = 0; I < Group.size(); ++I)
    Mods.push_back(&Group[I]);
  EditScript Script(Mods, scriptOptions(Seed, Steps));

  // The in-process mirror the daemon must stay byte-identical to.
  std::unique_ptr<MergeService> Mirror;
  if (Verify) {
    MergeServiceOptions SO;
    SO.Driver.Selection = RM.Selection;
    SO.Driver.NumThreads = RM.NumThreads;
    SO.Driver.ShardCount = RM.ShardCount;
    SO.Driver.ExplorationThreshold = RM.ExplorationThreshold;
    Mirror = std::make_unique<MergeService>(SO);
    for (Module *M : Mods)
      Mirror->addModule(*M);
    Mirror->initialize();
    uint64_t Local = groupDigest(Mods);
    if (Local != Init.ModuleDigest) {
      std::fprintf(stderr,
                   "salssa-client: epoch 0 digest mismatch "
                   "(daemon %016llx, local %016llx)\n",
                   static_cast<unsigned long long>(Init.ModuleDigest),
                   static_cast<unsigned long long>(Local));
      return 1;
    }
  }

  unsigned Verified = Verify ? 1 : 0;
  for (unsigned S = 0; S < Script.numSteps(); ++S) {
    EditStepSpec Spec = Script.stepSpec(S);
    ApplyDeltaResponse Resp;
    uint64_t Token = mix64(Seed ^ (0x5a11ad00ULL + S));
    R = Client.applyStep(Spec, Token, Resp);
    if (!R.TransportOk || R.Status != StatusCode::Ok) {
      std::fprintf(stderr, "salssa-client: step %u failed: %s (%s)\n", S,
                   statusCodeName(R.Status), R.ErrorMessage.c_str());
      return 1;
    }
    if (Verify) {
      // Mirror the step in-process; the daemon's post-delta digest must
      // equal the mirror's bytes — the wire added nothing and lost
      // nothing.
      {
        MergeService::DeltaBatch Batch = Mirror->beginDelta();
        AppliedEditStep A = applyEditStep(
            Mods, Spec, [&](Function *F) { Batch.checkoutForEdit(F); });
        MergeDelta D;
        D.Changed = A.Changed;
        D.Added = A.Added;
        D.Deleted = A.Deleted;
        Batch.apply(D);
      }
      uint64_t Local = groupDigest(Mods);
      if (Local != Resp.Stats.ModuleDigest) {
        std::fprintf(stderr,
                     "salssa-client: step %u digest mismatch "
                     "(daemon %016llx, local %016llx)\n",
                     S, static_cast<unsigned long long>(Resp.Stats.ModuleDigest),
                     static_cast<unsigned long long>(Local));
        return 1;
      }
      ++Verified;
    }
    if (!Json)
      std::printf("step %u: epoch=%u commits=%llu size=%llu->%llu%s\n", S,
                  Resp.Stats.Epoch,
                  static_cast<unsigned long long>(Resp.Stats.CommittedMerges),
                  static_cast<unsigned long long>(Resp.Stats.SizeBefore),
                  static_cast<unsigned long long>(Resp.Stats.SizeAfter),
                  Resp.Replayed ? " (replayed)" : "");
  }

  QueryStatsResponse Final;
  R = Client.queryStats(false, Final);
  if (!R.TransportOk || R.Status != StatusCode::Ok) {
    std::fprintf(stderr, "salssa-client: final stats failed\n");
    return 1;
  }
  if (Json) {
    std::printf("{\"bench\": \"service_daemon\", \"steps\": %u, "
                "\"verified_epochs\": %u, \"commits\": %llu, "
                "\"size_after\": %llu, \"deltas\": %llu, "
                "\"token_replays\": %llu, \"client_retries\": %llu, "
                "\"daemon_errors\": %llu}\n",
                Script.numSteps(), Verified,
                static_cast<unsigned long long>(Final.Stats.CommittedMerges),
                static_cast<unsigned long long>(Final.Stats.SizeAfter),
                static_cast<unsigned long long>(Final.Daemon.DeltasApplied),
                static_cast<unsigned long long>(Final.Daemon.TokenReplays),
                static_cast<unsigned long long>(Client.retriesUsed()),
                static_cast<unsigned long long>(Final.Daemon.RequestErrors));
  } else {
    std::printf("done: %u steps applied%s\n", Script.numSteps(),
                Verify ? ", every epoch byte-identical to in-process" : "");
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  ClientOptions Opts;
  std::string Command;
  bool Prints = false, Verify = false, Json = false;
  unsigned Steps = 3, Threads = 1, Shards = 1;
  uint64_t Seed = 501;
  std::string Value;
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (flagValue(Arg, "--socket", Value)) {
      Opts.SocketPath = Value;
    } else if (flagValue(Arg, "--steps", Value)) {
      Steps = static_cast<unsigned>(std::strtoul(Value.c_str(), nullptr, 10));
    } else if (flagValue(Arg, "--seed", Value)) {
      Seed = std::strtoull(Value.c_str(), nullptr, 10);
    } else if (flagValue(Arg, "--threads", Value)) {
      Threads = static_cast<unsigned>(std::strtoul(Value.c_str(), nullptr, 10));
    } else if (flagValue(Arg, "--shards", Value)) {
      Shards = static_cast<unsigned>(std::strtoul(Value.c_str(), nullptr, 10));
    } else if (std::strcmp(Arg, "--prints") == 0) {
      Prints = true;
    } else if (std::strcmp(Arg, "--verify") == 0) {
      Verify = true;
    } else if (std::strcmp(Arg, "--json") == 0) {
      Json = true;
    } else if (Arg[0] != '-' && Command.empty()) {
      Command = Arg;
    } else {
      std::fprintf(stderr, "salssa-client: unknown argument '%s'\n", Arg);
      return usage();
    }
  }
  if (Opts.SocketPath.empty() || Command.empty())
    return usage();

  DaemonClient Client(Opts);
  if (Command == "stats")
    return cmdStats(Client, Prints);
  if (Command == "shutdown") {
    DaemonClient::Result R = Client.shutdown();
    if (!R.TransportOk || R.Status != StatusCode::Ok) {
      std::fprintf(stderr, "salssa-client: shutdown failed: %s\n",
                   statusCodeName(R.Status));
      return 1;
    }
    std::printf("salssa-client: daemon draining\n");
    return 0;
  }
  if (Command == "run-script")
    return cmdRunScript(Client, Steps, Seed, Threads, Shards, Verify, Json);
  return usage();
}
